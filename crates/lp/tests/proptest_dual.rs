//! Property tests for the dual-simplex warm path: re-solving after
//! randomized bound changes from the previous optimal basis must agree
//! with a cold primal solve — same feasibility verdict, same optimal
//! objective — while actually exercising dual pivots (not phase-I).
//!
//! This mirrors `tests/warm_start_equivalence.rs` one layer down: the
//! planner's B&B children and `apply_reduction` re-solves are exactly
//! "same matrix, moved bounds, stale basis", which is the precondition for
//! the dual entry in `sqpr_lp::dual`.
//!
//! Implemented as seeded random-case loops (the sanctioned dependency set
//! has no `proptest`); every case prints its seed on failure so it can be
//! replayed deterministically.

use sqpr_lp::{
    solve, solve_with_bounds, solve_with_bounds_from, LpStatus, PricingRule, Problem,
    ProblemBuilder, RatioTest, SimplexOptions, INF,
};
use sqpr_workload::rng::{Rng, StdRng};

/// Random bounded LP, structured like a B&B relaxation: every column in
/// `[0, u]` with u in 1..=3, rows a mix of <=, >= and ranged.
fn random_lp(rng: &mut StdRng) -> (Problem, Vec<f64>, Vec<f64>) {
    let ncols = rng.gen_index(6) + 2;
    let nrows = rng.gen_index(4) + 1;
    let mut b = ProblemBuilder::new();
    let mut lb = Vec::new();
    let mut ub = Vec::new();
    for _ in 0..ncols {
        let u = (rng.gen_index(3) + 1) as f64;
        b.add_col(rng.gen_range_i64(-6, 6) as f64, 0.0, u);
        lb.push(0.0);
        ub.push(u);
    }
    for _ in 0..nrows {
        let r = match rng.gen_index(3) {
            0 => b.add_row(-INF, rng.gen_range_i64(1, 8) as f64),
            1 => b.add_row(rng.gen_range_i64(-4, 2) as f64, INF),
            _ => {
                let lo = rng.gen_range_i64(-2, 2) as f64;
                b.add_row(lo, lo + rng.gen_index(5) as f64)
            }
        };
        for j in 0..ncols {
            if rng.gen_index(3) != 0 {
                let c = rng.gen_range_i64(-3, 4) as f64;
                if c != 0.0 {
                    b.set_coeff(r, j, c);
                }
            }
        }
    }
    (b.build(), lb, ub)
}

/// Random B&B-style bound change: fix, tighten, or restore a few columns.
fn mutate_bounds(rng: &mut StdRng, lb: &mut [f64], ub: &mut [f64], orig_ub: &[f64]) {
    let n = lb.len();
    for _ in 0..rng.gen_index(3) + 1 {
        let j = rng.gen_index(n);
        match rng.gen_index(4) {
            0 => {
                // Fix to an integer point inside the original range.
                let v = rng.gen_index(orig_ub[j] as usize + 1) as f64;
                lb[j] = v;
                ub[j] = v;
            }
            1 => {
                // Tighten the upper bound (branch "down").
                ub[j] = (ub[j] - 1.0).max(lb[j]);
            }
            2 => {
                // Raise the lower bound (branch "up").
                lb[j] = (lb[j] + 1.0).min(ub[j]);
            }
            _ => {
                // Restore (the reduction freeing a previously fixed var).
                lb[j] = 0.0;
                ub[j] = orig_ub[j];
            }
        }
    }
}

#[test]
fn dual_resolves_match_cold_solves_after_bound_changes() {
    let opts = SimplexOptions::default();
    let mut total_dual = 0usize;
    let mut exercised = 0usize;
    for seed in 0..120u64 {
        let mut rng = StdRng::seed_from_u64(0xD0A1_5EED ^ seed);
        let (p, lb0, ub0) = random_lp(&mut rng);
        let base = solve(&p, &opts);
        if base.status != LpStatus::Optimal {
            continue;
        }
        let mut lb = lb0.clone();
        let mut ub = ub0.clone();
        // Chain several bound changes, re-solving warm from the previous
        // basis each time — the B&B dive pattern.
        let mut basis = base.basis.clone();
        for step in 0..4 {
            mutate_bounds(&mut rng, &mut lb, &mut ub, &ub0);
            let warm = solve_with_bounds_from(&p, &lb, &ub, basis.as_ref(), &opts);
            let cold = solve_with_bounds(&p, &lb, &ub, &opts);
            assert_eq!(
                warm.status, cold.status,
                "seed {seed} step {step}: status diverged (warm {:?} vs cold {:?})",
                warm.status, cold.status
            );
            if warm.status == LpStatus::Optimal {
                assert!(
                    (warm.objective - cold.objective).abs() < 1e-6 * (1.0 + cold.objective.abs()),
                    "seed {seed} step {step}: objectives diverged (warm {} vs cold {})",
                    warm.objective,
                    cold.objective
                );
                assert!(
                    p.is_feasible(&warm.x, 1e-6),
                    "seed {seed} step {step}: warm point infeasible"
                );
            }
            assert_eq!(
                warm.pivots.total(),
                warm.iterations,
                "seed {seed} step {step}: pivot phases must sum to the total"
            );
            // Cold solves never take the dual path.
            assert_eq!(cold.pivots.dual, 0, "seed {seed} step {step}");
            if warm.pivots.dual > 0 {
                exercised += 1;
            }
            total_dual += warm.pivots.dual;
            basis = warm.basis.clone();
        }
    }
    // The suite must actually exercise the dual path, not silently fall
    // back to phase-I everywhere.
    assert!(
        total_dual > 0 && exercised >= 10,
        "dual simplex under-exercised: {total_dual} dual pivots over {exercised} warm solves"
    );
}

/// The Harris and bound-flipping dual ratio tests must agree with the
/// classic test on every warm bound-change re-solve: same feasibility
/// verdict, same optimal objective. The long-step path must actually
/// exercise bound flips somewhere in the suite (boxed columns with
/// multi-unit violations are common under the fix/tighten mutations).
#[test]
fn ratio_test_modes_agree_on_warm_resolves() {
    let modes = [RatioTest::Classic, RatioTest::Harris, RatioTest::LongStep];
    let mut longstep_flips = 0usize;
    let mut longstep_dual = 0usize;
    for seed in 0..120u64 {
        let mut rng = StdRng::seed_from_u64(0x10A6_57E9 ^ (seed << 1));
        let (p, lb0, ub0) = random_lp(&mut rng);
        let base = solve(&p, &SimplexOptions::default());
        if base.status != LpStatus::Optimal {
            continue;
        }
        let mut lb = lb0.clone();
        let mut ub = ub0.clone();
        for step in 0..3 {
            mutate_bounds(&mut rng, &mut lb, &mut ub, &ub0);
            let cold = solve_with_bounds(&p, &lb, &ub, &SimplexOptions::default());
            for &ratio_test in &modes {
                let opts = SimplexOptions {
                    ratio_test,
                    ..SimplexOptions::default()
                };
                let warm = solve_with_bounds_from(&p, &lb, &ub, base.basis.as_ref(), &opts);
                assert_eq!(
                    warm.status, cold.status,
                    "seed {seed} step {step} {ratio_test:?}: status diverged"
                );
                if warm.status == LpStatus::Optimal {
                    assert!(
                        (warm.objective - cold.objective).abs()
                            < 1e-6 * (1.0 + cold.objective.abs()),
                        "seed {seed} step {step} {ratio_test:?}: {} vs {}",
                        warm.objective,
                        cold.objective
                    );
                    assert!(
                        p.is_feasible(&warm.x, 1e-6),
                        "seed {seed} step {step} {ratio_test:?}: infeasible point"
                    );
                }
                if ratio_test == RatioTest::LongStep {
                    longstep_flips += warm.pivots.bound_flips;
                    longstep_dual += warm.pivots.dual;
                }
            }
        }
    }
    assert!(
        longstep_dual > 0 && longstep_flips > 0,
        "long-step path under-exercised: {longstep_dual} dual pivots, {longstep_flips} flips"
    );
}

/// The devex amortisation heuristic: hinted (warm) re-solves keep unit
/// reference weights, so under `PricingRule::Devex` they price exactly
/// like Dantzig — identical iteration counts, not just identical answers.
#[test]
fn hinted_resolves_price_like_dantzig() {
    for seed in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(0xAD4E ^ (seed << 2));
        let (p, _, ub0) = random_lp(&mut rng);
        let base = solve(
            &p,
            &SimplexOptions {
                pricing: PricingRule::Dantzig,
                ..SimplexOptions::default()
            },
        );
        if base.status != LpStatus::Optimal {
            continue;
        }
        let mut lb: Vec<f64> = vec![0.0; p.ncols()];
        let mut ub = ub0.clone();
        mutate_bounds(&mut rng, &mut lb, &mut ub, &ub0);
        let [devex, dantzig] = [PricingRule::Devex, PricingRule::Dantzig].map(|pricing| {
            solve_with_bounds_from(
                &p,
                &lb,
                &ub,
                base.basis.as_ref(),
                &SimplexOptions {
                    pricing,
                    ..SimplexOptions::default()
                },
            )
        });
        assert_eq!(devex.status, dantzig.status, "seed {seed}");
        assert_eq!(
            devex.iterations, dantzig.iterations,
            "seed {seed}: hinted devex must follow the exact Dantzig path"
        );
        if devex.status == LpStatus::Optimal {
            assert!(
                (devex.objective - dantzig.objective).abs() < 1e-9,
                "seed {seed}"
            );
        }
    }
}

#[test]
fn dual_path_handles_infeasible_children() {
    // A tight equality row plus fixed columns: many mutations make the
    // child infeasible; the dual loop must prove it (or fall back), never
    // report a bogus optimum.
    let opts = SimplexOptions::default();
    for seed in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(0xFEA5 ^ (seed << 3));
        let ncols = rng.gen_index(4) + 2;
        let mut b = ProblemBuilder::new();
        for _ in 0..ncols {
            b.add_col(rng.gen_range_i64(-4, 4) as f64, 0.0, 1.0);
        }
        let target = rng.gen_index(ncols) as f64;
        let r = b.add_row(target, target);
        for j in 0..ncols {
            b.set_coeff(r, j, 1.0);
        }
        let p = b.build();
        let base = solve(&p, &opts);
        assert_eq!(base.status, LpStatus::Optimal);
        // Fix every column at a random binary value: feasible only if the
        // sum happens to hit the target.
        let fixed: Vec<f64> = (0..ncols).map(|_| rng.gen_index(2) as f64).collect();
        let warm = solve_with_bounds_from(&p, &fixed, &fixed, base.basis.as_ref(), &opts);
        let cold = solve_with_bounds(&p, &fixed, &fixed, &opts);
        assert_eq!(
            warm.status, cold.status,
            "seed {seed}: fixed-child verdicts diverged"
        );
        let sum: f64 = fixed.iter().sum();
        let expect_feasible = (sum - target).abs() < 1e-9;
        assert_eq!(
            warm.status == LpStatus::Optimal,
            expect_feasible,
            "seed {seed}: wrong feasibility verdict"
        );
    }
}

/// Forrest–Tomlin and product-form basis updates must agree on every warm
/// bound-change re-solve: same feasibility verdict, same optimal
/// objective, across chained re-solve sequences (the B&B dive pattern).
/// The FT path must actually absorb updates (no silent PFI fallback), and
/// the hyper-sparse kernels must carry a meaningful share of the suite's
/// solves — warm re-solves are exactly where hyper-sparsity pays.
#[test]
fn basis_update_modes_agree_on_warm_resolves() {
    use sqpr_lp::BasisUpdate;
    let mut ft_updates = 0usize;
    let mut sparse = 0usize;
    let mut dense = 0usize;
    for seed in 0..120u64 {
        let mut rng = StdRng::seed_from_u64(0xFEED_F00D ^ (seed << 2));
        let (p, lb0, ub0) = random_lp(&mut rng);
        let base = solve(&p, &SimplexOptions::default());
        if base.status != LpStatus::Optimal {
            continue;
        }
        let mut lb = lb0.clone();
        let mut ub = ub0.clone();
        let mut basis_ft = base.basis.clone();
        let mut basis_pfi = base.basis.clone();
        for step in 0..4 {
            mutate_bounds(&mut rng, &mut lb, &mut ub, &ub0);
            let ft = solve_with_bounds_from(
                &p,
                &lb,
                &ub,
                basis_ft.as_ref(),
                &SimplexOptions {
                    basis_update: BasisUpdate::ForrestTomlin,
                    ..SimplexOptions::default()
                },
            );
            let pfi = solve_with_bounds_from(
                &p,
                &lb,
                &ub,
                basis_pfi.as_ref(),
                &SimplexOptions {
                    basis_update: BasisUpdate::ProductForm,
                    ..SimplexOptions::default()
                },
            );
            assert_eq!(
                ft.status, pfi.status,
                "seed {seed} step {step}: status diverged (FT {:?} vs PFI {:?})",
                ft.status, pfi.status
            );
            if ft.status == LpStatus::Optimal {
                assert!(
                    (ft.objective - pfi.objective).abs() < 1e-6 * (1.0 + pfi.objective.abs()),
                    "seed {seed} step {step}: FT {} vs PFI {}",
                    ft.objective,
                    pfi.objective
                );
                assert!(
                    p.is_feasible(&ft.x, 1e-6),
                    "seed {seed} step {step}: FT point infeasible"
                );
            }
            assert_eq!(
                pfi.pivots.ft_updates, 0,
                "seed {seed} step {step}: PFI mode must not run FT updates"
            );
            ft_updates += ft.pivots.ft_updates;
            sparse += ft.pivots.sparse_solves;
            dense += ft.pivots.dense_solves;
            basis_ft = ft.basis.clone();
            basis_pfi = pfi.basis.clone();
        }
    }
    assert!(
        ft_updates > 0,
        "Forrest–Tomlin under-exercised across the suite"
    );
    // These random LPs are small (m <= 5), below any useful density
    // cutoff, so solves are *recorded* — the hit-rate itself is asserted
    // on the planner-scale bench, not here.
    assert!(sparse + dense > 0, "no solves recorded");
}
