//! Property tests: the revised simplex must agree with the brute-force
//! vertex-enumeration oracle on random small LPs.
//!
//! Implemented as seeded random-case loops (the sanctioned dependency set
//! has no `proptest`); every case prints its seed on failure so it can be
//! replayed deterministically.

use sqpr_lp::oracle::brute_force_optimum;
use sqpr_lp::{solve, LpStatus, ProblemBuilder, SimplexOptions, INF};
use sqpr_workload::rng::{Rng, StdRng};

#[derive(Debug, Clone)]
struct RandomLp {
    ncols: usize,
    obj: Vec<i32>,
    col_lb: Vec<i32>,
    col_width: Vec<u8>,
    rows: Vec<(Vec<i32>, i32, u8, u8)>, // coeffs, lb, width, kind(0:<=,1:>=,2:range,3:eq)
}

fn random_lp(rng: &mut StdRng) -> RandomLp {
    let ncols = rng.gen_index(4) + 1;
    let nrows = rng.gen_index(3) + 1;
    let obj = (0..ncols)
        .map(|_| rng.gen_range_i64(-4, 4) as i32)
        .collect();
    let col_lb = (0..ncols)
        .map(|_| rng.gen_range_i64(-3, 2) as i32)
        .collect();
    let col_width = (0..ncols).map(|_| rng.gen_index(6) as u8).collect();
    let rows = (0..nrows)
        .map(|_| {
            (
                (0..ncols)
                    .map(|_| rng.gen_range_i64(-3, 3) as i32)
                    .collect(),
                rng.gen_range_i64(-4, 4) as i32,
                rng.gen_index(7) as u8,
                rng.gen_index(4) as u8,
            )
        })
        .collect();
    RandomLp {
        ncols,
        obj,
        col_lb,
        col_width,
        rows,
    }
}

fn build(lp: &RandomLp) -> sqpr_lp::Problem {
    let mut b = ProblemBuilder::new();
    for j in 0..lp.ncols {
        b.add_col(
            lp.obj[j] as f64,
            lp.col_lb[j] as f64,
            (lp.col_lb[j] as f64) + lp.col_width[j] as f64,
        );
    }
    for (coeffs, lb, width, kind) in &lp.rows {
        let (rlb, rub) = match kind {
            0 => (-INF, *lb as f64 + *width as f64),
            1 => (*lb as f64, INF),
            2 => (*lb as f64, *lb as f64 + *width as f64),
            _ => (*lb as f64, *lb as f64),
        };
        let r = b.add_row(rlb, rub);
        for (j, &c) in coeffs.iter().enumerate() {
            b.set_coeff(r, j, c as f64);
        }
    }
    b.build()
}

#[test]
fn simplex_matches_oracle() {
    for seed in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0xA11CE ^ seed);
        let lp = random_lp(&mut rng);
        let p = build(&lp);
        let oracle = brute_force_optimum(&p, 1e-9);
        let s = solve(&p, &SimplexOptions::default());
        match (oracle, s.status) {
            (Some((obj, _)), LpStatus::Optimal) => {
                assert!(
                    (obj - s.objective).abs() < 1e-5 * (1.0 + obj.abs()),
                    "seed {seed}: oracle {obj} vs simplex {} on {lp:?}",
                    s.objective
                );
                assert!(p.is_feasible(&s.x, 1e-6), "seed {seed}: {lp:?}");
            }
            (None, LpStatus::Infeasible) => {}
            (o, st) => {
                panic!(
                    "seed {seed}: oracle {o:?} vs simplex status {st:?} obj {} on {lp:?}",
                    s.objective
                );
            }
        }
    }
}

#[test]
fn bound_overrides_respected() {
    for seed in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0xB0B ^ (seed << 1));
        let lp = random_lp(&mut rng);
        // Fixing every variable to its lower bound must give either an
        // infeasible verdict or exactly that point.
        let p = build(&lp);
        let lbs: Vec<f64> = lp.col_lb.iter().map(|&v| v as f64).collect();
        let s = sqpr_lp::solve_with_bounds(&p, &lbs, &lbs, &SimplexOptions::default());
        match s.status {
            LpStatus::Optimal => {
                for (a, b) in s.x.iter().zip(&lbs) {
                    assert!((a - b).abs() < 1e-6, "seed {seed}: {lp:?}");
                }
                assert!(p.is_feasible(&s.x, 1e-6), "seed {seed}: {lp:?}");
            }
            LpStatus::Infeasible => {
                assert!(!p.is_feasible(&lbs, 1e-7), "seed {seed}: {lp:?}");
            }
            other => panic!("seed {seed}: unexpected status {other:?} on {lp:?}"),
        }
    }
}
