//! Property tests: the revised simplex must agree with the brute-force
//! vertex-enumeration oracle on random small LPs.

use proptest::prelude::*;
use sqpr_lp::oracle::brute_force_optimum;
use sqpr_lp::{solve, LpStatus, ProblemBuilder, SimplexOptions, INF};

#[derive(Debug, Clone)]
struct RandomLp {
    ncols: usize,
    obj: Vec<i32>,
    col_lb: Vec<i32>,
    col_width: Vec<u8>,
    rows: Vec<(Vec<i32>, i32, u8, u8)>, // coeffs, lb, width, kind(0:<=,1:>=,2:range,3:eq)
}

fn random_lp() -> impl Strategy<Value = RandomLp> {
    (1usize..=4, 1usize..=3)
        .prop_flat_map(|(n, m)| {
            (
                Just(n),
                proptest::collection::vec(-4i32..=4, n),
                proptest::collection::vec(-3i32..=2, n),
                proptest::collection::vec(0u8..=5, n),
                proptest::collection::vec(
                    (
                        proptest::collection::vec(-3i32..=3, n),
                        -4i32..=4,
                        0u8..=6,
                        0u8..=3,
                    ),
                    m,
                ),
            )
        })
        .prop_map(|(ncols, obj, col_lb, col_width, rows)| RandomLp {
            ncols,
            obj,
            col_lb,
            col_width,
            rows,
        })
}

fn build(lp: &RandomLp) -> sqpr_lp::Problem {
    let mut b = ProblemBuilder::new();
    for j in 0..lp.ncols {
        b.add_col(
            lp.obj[j] as f64,
            lp.col_lb[j] as f64,
            (lp.col_lb[j] as f64) + lp.col_width[j] as f64,
        );
    }
    for (coeffs, lb, width, kind) in &lp.rows {
        let (rlb, rub) = match kind {
            0 => (-INF, *lb as f64 + *width as f64),
            1 => (*lb as f64, INF),
            2 => (*lb as f64, *lb as f64 + *width as f64),
            _ => (*lb as f64, *lb as f64),
        };
        let r = b.add_row(rlb, rub);
        for (j, &c) in coeffs.iter().enumerate() {
            b.set_coeff(r, j, c as f64);
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn simplex_matches_oracle(lp in random_lp()) {
        let p = build(&lp);
        let oracle = brute_force_optimum(&p, 1e-9);
        let s = solve(&p, &SimplexOptions::default());
        match (oracle, s.status) {
            (Some((obj, _)), LpStatus::Optimal) => {
                prop_assert!((obj - s.objective).abs() < 1e-5 * (1.0 + obj.abs()),
                    "oracle {obj} vs simplex {}", s.objective);
                prop_assert!(p.is_feasible(&s.x, 1e-6));
            }
            (None, LpStatus::Infeasible) => {}
            (o, st) => {
                prop_assert!(false, "oracle {o:?} vs simplex status {st:?} obj {}", s.objective);
            }
        }
    }

    #[test]
    fn bound_overrides_respected(lp in random_lp()) {
        // Fixing every variable to its lower bound must give either an
        // infeasible verdict or exactly that point.
        let p = build(&lp);
        let lbs: Vec<f64> = lp.col_lb.iter().map(|&v| v as f64).collect();
        let s = sqpr_lp::solve_with_bounds(&p, &lbs, &lbs, &SimplexOptions::default());
        match s.status {
            LpStatus::Optimal => {
                for (a, b) in s.x.iter().zip(&lbs) {
                    prop_assert!((a - b).abs() < 1e-6);
                }
                prop_assert!(p.is_feasible(&s.x, 1e-6));
            }
            LpStatus::Infeasible => {
                prop_assert!(!p.is_feasible(&lbs, 1e-7));
            }
            other => prop_assert!(false, "unexpected status {other:?}"),
        }
    }
}
