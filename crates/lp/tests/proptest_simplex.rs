//! Property tests: the revised simplex must agree with the brute-force
//! vertex-enumeration oracle on random small LPs.
//!
//! Implemented as seeded random-case loops (the sanctioned dependency set
//! has no `proptest`); every case prints its seed on failure so it can be
//! replayed deterministically.

use sqpr_lp::oracle::brute_force_optimum;
use sqpr_lp::{solve, LpStatus, PricingRule, ProblemBuilder, RatioTest, SimplexOptions, INF};
use sqpr_workload::rng::{Rng, StdRng};

#[derive(Debug, Clone)]
struct RandomLp {
    ncols: usize,
    obj: Vec<i32>,
    col_lb: Vec<i32>,
    col_width: Vec<u8>,
    rows: Vec<(Vec<i32>, i32, u8, u8)>, // coeffs, lb, width, kind(0:<=,1:>=,2:range,3:eq)
}

fn random_lp(rng: &mut StdRng) -> RandomLp {
    let ncols = rng.gen_index(4) + 1;
    let nrows = rng.gen_index(3) + 1;
    let obj = (0..ncols)
        .map(|_| rng.gen_range_i64(-4, 4) as i32)
        .collect();
    let col_lb = (0..ncols)
        .map(|_| rng.gen_range_i64(-3, 2) as i32)
        .collect();
    let col_width = (0..ncols).map(|_| rng.gen_index(6) as u8).collect();
    let rows = (0..nrows)
        .map(|_| {
            (
                (0..ncols)
                    .map(|_| rng.gen_range_i64(-3, 3) as i32)
                    .collect(),
                rng.gen_range_i64(-4, 4) as i32,
                rng.gen_index(7) as u8,
                rng.gen_index(4) as u8,
            )
        })
        .collect();
    RandomLp {
        ncols,
        obj,
        col_lb,
        col_width,
        rows,
    }
}

fn build(lp: &RandomLp) -> sqpr_lp::Problem {
    let mut b = ProblemBuilder::new();
    for j in 0..lp.ncols {
        b.add_col(
            lp.obj[j] as f64,
            lp.col_lb[j] as f64,
            (lp.col_lb[j] as f64) + lp.col_width[j] as f64,
        );
    }
    for (coeffs, lb, width, kind) in &lp.rows {
        let (rlb, rub) = match kind {
            0 => (-INF, *lb as f64 + *width as f64),
            1 => (*lb as f64, INF),
            2 => (*lb as f64, *lb as f64 + *width as f64),
            _ => (*lb as f64, *lb as f64),
        };
        let r = b.add_row(rlb, rub);
        for (j, &c) in coeffs.iter().enumerate() {
            b.set_coeff(r, j, c as f64);
        }
    }
    b.build()
}

#[test]
fn simplex_matches_oracle() {
    for seed in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0xA11CE ^ seed);
        let lp = random_lp(&mut rng);
        let p = build(&lp);
        let oracle = brute_force_optimum(&p, 1e-9);
        let s = solve(&p, &SimplexOptions::default());
        match (oracle, s.status) {
            (Some((obj, _)), LpStatus::Optimal) => {
                assert!(
                    (obj - s.objective).abs() < 1e-5 * (1.0 + obj.abs()),
                    "seed {seed}: oracle {obj} vs simplex {} on {lp:?}",
                    s.objective
                );
                assert!(p.is_feasible(&s.x, 1e-6), "seed {seed}: {lp:?}");
            }
            (None, LpStatus::Infeasible) => {}
            (o, st) => {
                panic!(
                    "seed {seed}: oracle {o:?} vs simplex status {st:?} obj {} on {lp:?}",
                    s.objective
                );
            }
        }
    }
}

/// A deliberately degenerate model family: many rows pass through the same
/// vertex (duplicated and scaled facets), boxed columns, integer data — the
/// structure on which textbook ratio tests grind through zero-length
/// pivots. Assignment-like equality rows mirror the planner's models.
fn random_degenerate_lp(rng: &mut StdRng) -> sqpr_lp::Problem {
    let ncols = rng.gen_index(5) + 3;
    let mut b = ProblemBuilder::new();
    for _ in 0..ncols {
        b.add_col(rng.gen_range_i64(-5, 5) as f64, 0.0, 1.0);
    }
    // A few base facets, each duplicated (possibly scaled) 1-3 times.
    for _ in 0..rng.gen_index(3) + 1 {
        let coeffs: Vec<i64> = (0..ncols).map(|_| rng.gen_range_i64(0, 2)).collect();
        let rhs = rng.gen_range_i64(1, ncols as i64 / 2 + 1) as f64;
        for _ in 0..rng.gen_index(3) + 1 {
            let scale = rng.gen_range_i64(1, 3) as f64;
            let r = b.add_row(-INF, rhs * scale);
            for (j, &c) in coeffs.iter().enumerate() {
                if c != 0 {
                    b.set_coeff(r, j, c as f64 * scale);
                }
            }
        }
    }
    // One assignment-style equality row over a random subset.
    let picked: Vec<usize> = (0..ncols).filter(|_| rng.gen_bool()).collect();
    if picked.len() >= 2 {
        let r = b.add_row(1.0, 1.0);
        for &j in &picked {
            b.set_coeff(r, j, 1.0);
        }
    }
    b.build()
}

/// Every ratio-test mode and pricing rule must agree on status and optimal
/// objective across randomized degenerate models — the refinements may only
/// change the *path*, never the answer.
#[test]
fn ratio_test_modes_agree_on_degenerate_models() {
    let modes = [RatioTest::Classic, RatioTest::Harris, RatioTest::LongStep];
    let pricings = [PricingRule::Dantzig, PricingRule::Devex];
    for seed in 0..160u64 {
        let mut rng = StdRng::seed_from_u64(0xDE9E ^ (seed << 2));
        let p = random_degenerate_lp(&mut rng);
        let reference = solve(
            &p,
            &SimplexOptions {
                ratio_test: RatioTest::Classic,
                pricing: PricingRule::Dantzig,
                ..SimplexOptions::default()
            },
        );
        for &ratio_test in &modes {
            for &pricing in &pricings {
                let opts = SimplexOptions {
                    ratio_test,
                    pricing,
                    ..SimplexOptions::default()
                };
                let s = solve(&p, &opts);
                assert_eq!(
                    s.status, reference.status,
                    "seed {seed} {ratio_test:?}/{pricing:?}: status diverged"
                );
                if s.status == LpStatus::Optimal {
                    assert!(
                        (s.objective - reference.objective).abs()
                            < 1e-6 * (1.0 + reference.objective.abs()),
                        "seed {seed} {ratio_test:?}/{pricing:?}: {} vs {}",
                        s.objective,
                        reference.objective
                    );
                    assert!(
                        p.is_feasible(&s.x, 1e-6),
                        "seed {seed} {ratio_test:?}/{pricing:?}: infeasible point"
                    );
                }
                assert_eq!(
                    s.pivots.total(),
                    s.iterations,
                    "seed {seed}: phase counters must sum to iterations"
                );
            }
        }
    }
}

#[test]
fn bound_overrides_respected() {
    for seed in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0xB0B ^ (seed << 1));
        let lp = random_lp(&mut rng);
        // Fixing every variable to its lower bound must give either an
        // infeasible verdict or exactly that point.
        let p = build(&lp);
        let lbs: Vec<f64> = lp.col_lb.iter().map(|&v| v as f64).collect();
        let s = sqpr_lp::solve_with_bounds(&p, &lbs, &lbs, &SimplexOptions::default());
        match s.status {
            LpStatus::Optimal => {
                for (a, b) in s.x.iter().zip(&lbs) {
                    assert!((a - b).abs() < 1e-6, "seed {seed}: {lp:?}");
                }
                assert!(p.is_feasible(&s.x, 1e-6), "seed {seed}: {lp:?}");
            }
            LpStatus::Infeasible => {
                assert!(!p.is_feasible(&lbs, 1e-7), "seed {seed}: {lp:?}");
            }
            other => panic!("seed {seed}: unexpected status {other:?} on {lp:?}"),
        }
    }
}
