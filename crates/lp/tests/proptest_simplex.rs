//! Property tests: the revised simplex must agree with the brute-force
//! vertex-enumeration oracle on random small LPs.
//!
//! Implemented as seeded random-case loops (the sanctioned dependency set
//! has no `proptest`); every case prints its seed on failure so it can be
//! replayed deterministically.

use sqpr_lp::oracle::brute_force_optimum;
use sqpr_lp::{solve, LpStatus, PricingRule, ProblemBuilder, RatioTest, SimplexOptions, INF};
use sqpr_workload::rng::{Rng, StdRng};

#[derive(Debug, Clone)]
struct RandomLp {
    ncols: usize,
    obj: Vec<i32>,
    col_lb: Vec<i32>,
    col_width: Vec<u8>,
    rows: Vec<(Vec<i32>, i32, u8, u8)>, // coeffs, lb, width, kind(0:<=,1:>=,2:range,3:eq)
}

fn random_lp(rng: &mut StdRng) -> RandomLp {
    let ncols = rng.gen_index(4) + 1;
    let nrows = rng.gen_index(3) + 1;
    let obj = (0..ncols)
        .map(|_| rng.gen_range_i64(-4, 4) as i32)
        .collect();
    let col_lb = (0..ncols)
        .map(|_| rng.gen_range_i64(-3, 2) as i32)
        .collect();
    let col_width = (0..ncols).map(|_| rng.gen_index(6) as u8).collect();
    let rows = (0..nrows)
        .map(|_| {
            (
                (0..ncols)
                    .map(|_| rng.gen_range_i64(-3, 3) as i32)
                    .collect(),
                rng.gen_range_i64(-4, 4) as i32,
                rng.gen_index(7) as u8,
                rng.gen_index(4) as u8,
            )
        })
        .collect();
    RandomLp {
        ncols,
        obj,
        col_lb,
        col_width,
        rows,
    }
}

fn build(lp: &RandomLp) -> sqpr_lp::Problem {
    let mut b = ProblemBuilder::new();
    for j in 0..lp.ncols {
        b.add_col(
            lp.obj[j] as f64,
            lp.col_lb[j] as f64,
            (lp.col_lb[j] as f64) + lp.col_width[j] as f64,
        );
    }
    for (coeffs, lb, width, kind) in &lp.rows {
        let (rlb, rub) = match kind {
            0 => (-INF, *lb as f64 + *width as f64),
            1 => (*lb as f64, INF),
            2 => (*lb as f64, *lb as f64 + *width as f64),
            _ => (*lb as f64, *lb as f64),
        };
        let r = b.add_row(rlb, rub);
        for (j, &c) in coeffs.iter().enumerate() {
            b.set_coeff(r, j, c as f64);
        }
    }
    b.build()
}

#[test]
fn simplex_matches_oracle() {
    for seed in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0xA11CE ^ seed);
        let lp = random_lp(&mut rng);
        let p = build(&lp);
        let oracle = brute_force_optimum(&p, 1e-9);
        let s = solve(&p, &SimplexOptions::default());
        match (oracle, s.status) {
            (Some((obj, _)), LpStatus::Optimal) => {
                assert!(
                    (obj - s.objective).abs() < 1e-5 * (1.0 + obj.abs()),
                    "seed {seed}: oracle {obj} vs simplex {} on {lp:?}",
                    s.objective
                );
                assert!(p.is_feasible(&s.x, 1e-6), "seed {seed}: {lp:?}");
            }
            (None, LpStatus::Infeasible) => {}
            (o, st) => {
                panic!(
                    "seed {seed}: oracle {o:?} vs simplex status {st:?} obj {} on {lp:?}",
                    s.objective
                );
            }
        }
    }
}

/// A deliberately degenerate model family: many rows pass through the same
/// vertex (duplicated and scaled facets), boxed columns, integer data — the
/// structure on which textbook ratio tests grind through zero-length
/// pivots. Assignment-like equality rows mirror the planner's models.
fn random_degenerate_lp(rng: &mut StdRng) -> sqpr_lp::Problem {
    let ncols = rng.gen_index(5) + 3;
    let mut b = ProblemBuilder::new();
    for _ in 0..ncols {
        b.add_col(rng.gen_range_i64(-5, 5) as f64, 0.0, 1.0);
    }
    // A few base facets, each duplicated (possibly scaled) 1-3 times.
    for _ in 0..rng.gen_index(3) + 1 {
        let coeffs: Vec<i64> = (0..ncols).map(|_| rng.gen_range_i64(0, 2)).collect();
        let rhs = rng.gen_range_i64(1, ncols as i64 / 2 + 1) as f64;
        for _ in 0..rng.gen_index(3) + 1 {
            let scale = rng.gen_range_i64(1, 3) as f64;
            let r = b.add_row(-INF, rhs * scale);
            for (j, &c) in coeffs.iter().enumerate() {
                if c != 0 {
                    b.set_coeff(r, j, c as f64 * scale);
                }
            }
        }
    }
    // One assignment-style equality row over a random subset.
    let picked: Vec<usize> = (0..ncols).filter(|_| rng.gen_bool()).collect();
    if picked.len() >= 2 {
        let r = b.add_row(1.0, 1.0);
        for &j in &picked {
            b.set_coeff(r, j, 1.0);
        }
    }
    b.build()
}

/// Every ratio-test mode and pricing rule must agree on status and optimal
/// objective across randomized degenerate models — the refinements may only
/// change the *path*, never the answer.
#[test]
fn ratio_test_modes_agree_on_degenerate_models() {
    let modes = [RatioTest::Classic, RatioTest::Harris, RatioTest::LongStep];
    let pricings = [PricingRule::Dantzig, PricingRule::Devex];
    for seed in 0..160u64 {
        let mut rng = StdRng::seed_from_u64(0xDE9E ^ (seed << 2));
        let p = random_degenerate_lp(&mut rng);
        let reference = solve(
            &p,
            &SimplexOptions {
                ratio_test: RatioTest::Classic,
                pricing: PricingRule::Dantzig,
                ..SimplexOptions::default()
            },
        );
        for &ratio_test in &modes {
            for &pricing in &pricings {
                let opts = SimplexOptions {
                    ratio_test,
                    pricing,
                    ..SimplexOptions::default()
                };
                let s = solve(&p, &opts);
                assert_eq!(
                    s.status, reference.status,
                    "seed {seed} {ratio_test:?}/{pricing:?}: status diverged"
                );
                if s.status == LpStatus::Optimal {
                    assert!(
                        (s.objective - reference.objective).abs()
                            < 1e-6 * (1.0 + reference.objective.abs()),
                        "seed {seed} {ratio_test:?}/{pricing:?}: {} vs {}",
                        s.objective,
                        reference.objective
                    );
                    assert!(
                        p.is_feasible(&s.x, 1e-6),
                        "seed {seed} {ratio_test:?}/{pricing:?}: infeasible point"
                    );
                }
                assert_eq!(
                    s.pivots.total(),
                    s.iterations,
                    "seed {seed}: phase counters must sum to iterations"
                );
            }
        }
    }
}

#[test]
fn bound_overrides_respected() {
    for seed in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0xB0B ^ (seed << 1));
        let lp = random_lp(&mut rng);
        // Fixing every variable to its lower bound must give either an
        // infeasible verdict or exactly that point.
        let p = build(&lp);
        let lbs: Vec<f64> = lp.col_lb.iter().map(|&v| v as f64).collect();
        let s = sqpr_lp::solve_with_bounds(&p, &lbs, &lbs, &SimplexOptions::default());
        match s.status {
            LpStatus::Optimal => {
                for (a, b) in s.x.iter().zip(&lbs) {
                    assert!((a - b).abs() < 1e-6, "seed {seed}: {lp:?}");
                }
                assert!(p.is_feasible(&s.x, 1e-6), "seed {seed}: {lp:?}");
            }
            LpStatus::Infeasible => {
                assert!(!p.is_feasible(&lbs, 1e-7), "seed {seed}: {lp:?}");
            }
            other => panic!("seed {seed}: unexpected status {other:?} on {lp:?}"),
        }
    }
}

/// Forrest–Tomlin and product-form basis updates must agree on status and
/// optimal objective across randomized models — the update representation
/// may only change the work per pivot, never the answer. Dispatch of the
/// hyper-sparse kernels is input-density driven, so this also sweeps both
/// solve paths.
#[test]
fn basis_update_modes_agree_on_random_models() {
    use sqpr_lp::BasisUpdate;
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(0xF0_7031 ^ (seed << 3));
        let p = if seed % 2 == 0 {
            build(&random_lp(&mut rng))
        } else {
            random_degenerate_lp(&mut rng)
        };
        let reference = solve(
            &p,
            &SimplexOptions {
                basis_update: BasisUpdate::ProductForm,
                ..SimplexOptions::default()
            },
        );
        let ft = solve(
            &p,
            &SimplexOptions {
                basis_update: BasisUpdate::ForrestTomlin,
                ..SimplexOptions::default()
            },
        );
        assert_eq!(ft.status, reference.status, "seed {seed}: status diverged");
        if ft.status == LpStatus::Optimal {
            assert!(
                (ft.objective - reference.objective).abs()
                    < 1e-6 * (1.0 + reference.objective.abs()),
                "seed {seed}: FT {} vs PFI {}",
                ft.objective,
                reference.objective
            );
            assert!(p.is_feasible(&ft.x, 1e-6), "seed {seed}: infeasible point");
        }
        assert_eq!(ft.pivots.pfi_updates, 0, "seed {seed}: FT fell back");
    }
}

/// Kernel-level property: on randomized (repaired) bases undergoing random
/// replacement sequences, the hyper-sparse FTRAN/BTRAN must agree with the
/// dense kernels, and Forrest–Tomlin-updated solves must match both the
/// product-form twin and a fresh refactorisation of the same basic set.
#[test]
fn sparse_dense_and_ft_solves_agree_on_random_bases() {
    use sqpr_lp::basis::{Basis, BasisUpdate};
    use sqpr_lp::{CscMatrix, IndexedVec, Triplet};
    for seed in 0..120u64 {
        let mut rng = StdRng::seed_from_u64(0x05AB_5EED ^ (seed << 1));
        let m = rng.gen_index(20) + 5;
        let n = rng.gen_index(2 * m) + m;
        // Sparse random structural matrix with a nonzero on row j % m per
        // column so most columns are usable pivots.
        let mut trips = Vec::new();
        for j in 0..n {
            trips.push(Triplet {
                row: j % m,
                col: j,
                value: rng.gen_range_i64(1, 5) as f64,
            });
            for _ in 0..rng.gen_index(3) {
                let r = rng.gen_index(m);
                let v = rng.gen_range_i64(-3, 4) as f64;
                if v != 0.0 {
                    trips.push(Triplet {
                        row: r,
                        col: j,
                        value: v,
                    });
                }
            }
        }
        let a = CscMatrix::from_triplets(m, n, &trips);
        // Random initial basic set: slack or structural per row (repair
        // fixes any singular picks).
        let basic: Vec<usize> = (0..m)
            .map(|i| {
                if rng.gen_bool() {
                    n + i
                } else {
                    rng.gen_index(n)
                }
            })
            .collect();
        let mut ft = Basis::new(&a, basic.clone(), BasisUpdate::ForrestTomlin);
        // The repair may alter the basic set; seed the PFI twin with the
        // repaired set so both track the same basis throughout.
        let mut pfi = Basis::new(&a, ft.basic_columns().to_vec(), BasisUpdate::ProductForm);

        for step in 0..10 {
            // Agreement on a random sparse rhs, both directions, both
            // modes, sparse vs dense kernels.
            let mut rhs_pattern = vec![0.0; m];
            for _ in 0..rng.gen_index(3) + 1 {
                rhs_pattern[rng.gen_index(m)] = rng.gen_range_i64(-4, 5) as f64;
            }
            let mut sp = IndexedVec::zeros(m);
            for (i, &v) in rhs_pattern.iter().enumerate() {
                if v != 0.0 {
                    sp.set(i, v);
                }
            }
            let mut dense = rhs_pattern.clone();
            ft.ftran_sp(&mut sp, &mut 0.0);
            ft.ftran(&mut dense);
            let mut pfi_dense = rhs_pattern.clone();
            pfi.ftran(&mut pfi_dense);
            for i in 0..m {
                assert!(
                    (sp[i] - dense[i]).abs() < 1e-8,
                    "seed {seed} step {step}: sparse vs dense FTRAN"
                );
                assert!(
                    (dense[i] - pfi_dense[i]).abs() < 1e-8,
                    "seed {seed} step {step}: FT vs PFI FTRAN"
                );
            }
            let mut c_sp = IndexedVec::zeros(m);
            c_sp.set(rng.gen_index(m), 1.0);
            let mut c_dense = c_sp.as_slice().to_vec();
            ft.btran_sp(&mut c_sp, &mut 0.0);
            ft.btran(&mut c_dense);
            for i in 0..m {
                assert!(
                    (c_sp[i] - c_dense[i]).abs() < 1e-8,
                    "seed {seed} step {step}: sparse vs dense BTRAN"
                );
            }

            // Random replacement: pick a nonbasic column whose FTRAN image
            // admits a usable pivot, apply it to both twins.
            let mut done = false;
            for _ in 0..6 {
                let j = rng.gen_index(n + m);
                if ft.basic_columns().contains(&j) {
                    continue;
                }
                let mut w = IndexedVec::zeros(m);
                ft.ftran_column_sp(j, &mut w);
                let mut best = (usize::MAX, 0.0f64);
                for p in 0..m {
                    if w[p].abs() > best.1.abs() {
                        best = (p, w[p]);
                    }
                }
                if best.0 == usize::MAX || best.1.abs() < 1e-6 {
                    continue;
                }
                let mut w_pfi = IndexedVec::zeros(m);
                pfi.ftran_column_sp(j, &mut w_pfi);
                ft.replace(best.0, j, &w);
                pfi.replace(best.0, j, &w_pfi);
                done = true;
                break;
            }
            if !done {
                break;
            }
        }

        // FT-updated solves must match a fresh refactorisation.
        let probe: Vec<f64> = (0..m).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut via_updates = probe.clone();
        ft.ftran(&mut via_updates);
        ft.refactorize();
        let mut via_fresh = probe.clone();
        ft.ftran(&mut via_fresh);
        for i in 0..m {
            assert!(
                (via_updates[i] - via_fresh[i]).abs() < 1e-7 * (1.0 + via_fresh[i].abs()),
                "seed {seed}: FT solve drifted from fresh refactorisation"
            );
        }
    }
}
