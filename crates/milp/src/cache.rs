//! Cached compressed LP lowering, reused across B&B constructions *and*
//! submissions.
//!
//! The compressed lowering re-scans every variable and term of the model —
//! acceptable once, but the SQPR planner constructs up to three [`crate::solver`]
//! searches per submission (cutting-plane rounds) over a persistent model
//! skeleton whose *structure* barely changes: between constructions only
//! bounds move (the §IV-A reduction re-fixing) and new rows are appended
//! (availability cuts). An [`LpCacheSlot`] keeps one lowered
//! [`sqpr_lp::Problem`] alive across those constructions and, instead of
//! rebuilding:
//!
//! - **patches column bounds** straight into the LP — including columns the
//!   current submission bound-fixes that the cached layout kept free (they
//!   simply solve with collapsed bounds);
//! - **recomputes row bounds** from each kept row's stored fixed-term list
//!   (the folded constants move when the deployment state changes);
//! - **appends rows** for model constraints added since the lowering (cut
//!   rounds) — appended rows keep every existing column/row index stable,
//!   so LP bases remain valid warm-start hints across rounds;
//! - re-derives `fixed_obj_min` / `infeasible_fixed_row` and rechecks the
//!   dropped constant rows.
//!
//! # Layout keying: fixed *classes*, not fixed *sets*
//!
//! The compression layout folds a **class** of bound-fixed columns out of
//! the LP; the folded values themselves are patch-time data, not layout.
//! The cache therefore stays reusable while:
//!
//! - the model's [`Model::structure_version`] matches (no new variables, no
//!   terms added to existing rows — i.e. no skeleton `extend` with real
//!   content), and
//! - **every folded column is still bound-fixed at *some* value**. The
//!   stored class is compared member-by-member — an exact set containment
//!   check, *not* a hash (an earlier revision compressed the fixed-index
//!   set to a 64-bit FNV-style signature, where a collision would silently
//!   reuse a wrong layout and corrupt the LP).
//!
//! A submission that re-fixes a *different superset* of the cached class
//! (the planner's deployment-state pins move every round) patches instead
//! of rebuilding: folded constants are re-applied at the current fixed
//! values, newly-fixed kept columns get collapsed bounds. Only freeing a
//! *folded* column — or real structural growth — forces a rebuild, so over
//! a run the folded class converges to the columns every submission pins.
//! The patched LP is bit-identical to lowering fresh under the same class
//! (`Model::lower_reduced_for_class`); the property tests assert that.
//!
//! # Lifted factor generation
//!
//! The slot also owns the [`LpWorkspace`] shared by every construction it
//! serves, and with it the workspace's detached basis-factor cache
//! ([`sqpr_lp::BasisState`]-adjacent `FactorState`). The matrix-generation
//! token scoping that cache is claimed *here*, not per B&B tree: the slot
//! knows exactly when the LP matrix survives a refresh untouched (pure
//! bound patch) versus when it changes (rebuild, appended cut rows), so the
//! token is renewed only then. Consecutive trees over an unchanged matrix —
//! cut rounds, and consecutive submissions that only re-fixed bounds —
//! re-attach each other's final factorisation at the root instead of
//! refactorising ([`sqpr_lp::LpWorkspace::resume_factor_generation`]).
//!
//! Staleness can cost a re-scan, never correctness: the checks run on
//! every `refresh`. The one mutation the version/class checks cannot see —
//! an in-place *swap* of same-length constraints without a
//! `structure_version` bump — is impossible through the [`Model`] API
//! (every term-editing call bumps the version; constraints are
//! append-only) and is additionally caught by a debug-build verification
//! pass that re-folds every cached row against the model.

use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

use crate::model::{
    const_row_violated, fold_constraint, shifted_bounds, LoweredLp, Model, Sense, VarType,
};
use sqpr_lp::{LpWorkspace, Triplet};

/// Matrix-generation tokens for basis-factorisation reuse. Cache slots
/// claim one per *matrix* (renewed on rebuild or row append); cacheless
/// B&B constructions claim one per tree. A single process-wide counter
/// keeps tokens unique across slots, so a workspace can never confuse two
/// matrices.
static FACTOR_GENERATION: AtomicU64 = AtomicU64::new(1);

/// Claims a fresh, process-unique matrix-generation token.
pub(crate) fn next_factor_token() -> u64 {
    FACTOR_GENERATION.fetch_add(1, AtomicOrdering::Relaxed)
}

/// Counters describing how the cache behaved (exposed for ablation
/// reporting and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Full lowerings (cold constructions or layout invalidations).
    pub rebuilds: usize,
    /// In-place reuses (bound patch, possibly plus appended rows).
    pub patches: usize,
    /// Patches whose bound-fixed set differed from the cached layout's
    /// folded class — the cross-submission hits that set-identity keying
    /// (the pre-class behaviour) would have paid a rebuild for.
    pub refix_patches: usize,
    /// Cut rows appended across all patches.
    pub appended_rows: usize,
}

impl CacheStats {
    /// Counter deltas accumulated since `earlier` (a snapshot of the same
    /// monotone counters). Saturating: if the slot was reset between the
    /// snapshots (context invalidation replaces it with a fresh slot), the
    /// delta clamps at zero instead of underflowing.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            rebuilds: self.rebuilds.saturating_sub(earlier.rebuilds),
            patches: self.patches.saturating_sub(earlier.patches),
            refix_patches: self.refix_patches.saturating_sub(earlier.refix_patches),
            appended_rows: self.appended_rows.saturating_sub(earlier.appended_rows),
        }
    }

    /// Accumulates another counter set into this one. Exhaustively
    /// destructured so a newly added counter is a compile error here, not a
    /// silently dropped stat.
    pub fn add(&mut self, other: &CacheStats) {
        let CacheStats {
            rebuilds,
            patches,
            refix_patches,
            appended_rows,
        } = *other;
        self.rebuilds += rebuilds;
        self.patches += patches;
        self.refix_patches += refix_patches;
        self.appended_rows += appended_rows;
    }

    /// Fraction of constructions served by an in-place patch (0 when no
    /// constructions were recorded).
    pub fn patch_rate(&self) -> f64 {
        let total = self.rebuilds + self.patches;
        if total == 0 {
            0.0
        } else {
            self.patches as f64 / total as f64
        }
    }
}

/// A slot owning at most one cached lowering; see the module docs.
#[derive(Debug, Default)]
pub struct LpCacheSlot {
    inner: Option<LpCache>,
    stats: CacheStats,
    /// LP scratch buffers (and the detached basis-factor cache) shared by
    /// every B&B construction served from this slot.
    ws: LpWorkspace,
    /// Worker-pool workspaces: one per parallel LP evaluator of the last
    /// construction, handed out with the slot and returned when its worker
    /// scope winds down, so consecutive trees reuse the workers'
    /// allocations just like the main workspace's. Kept separate from
    /// `ws` — worker factor caches are lineage-seeded per node, never
    /// carried across trees.
    worker_ws: Vec<LpWorkspace>,
    /// Matrix generation of the cached LP: renewed whenever the matrix
    /// changes (rebuild, appended rows), held across pure bound patches so
    /// consecutive constructions may re-attach each other's factors.
    factor_token: u64,
}

#[derive(Debug)]
struct LpCache {
    lowered: LoweredLp,
    /// Model identity the layout was derived from.
    structure_version: u64,
    nvars: usize,
    /// Model constraints lowered so far (kept + dropped); anything beyond
    /// is an appended row. Constraints are append-only by the [`Model`]
    /// API contract — any in-place term edit bumps `structure_version` —
    /// so indices below this watermark always mean the same row.
    ncons_lowered: usize,
    /// The folded class: model variable indices compressed out of the LP,
    /// ascending. Stored exactly (not hashed — see the module docs) and
    /// required to stay bound-fixed, at any value, for the layout to be
    /// reusable.
    folded: Vec<usize>,
}

impl LpCacheSlot {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drops the cached lowering (the planner calls this alongside its own
    /// skeleton invalidation; a stale cache would also be caught by the
    /// validity checks, this just frees the memory eagerly). The workspace
    /// and its allocations survive; the factor cache dies with the next
    /// rebuild's token renewal.
    pub fn invalidate(&mut self) {
        self.inner = None;
    }

    /// The cached lowering, if one is populated.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn lowered(&self) -> Option<&LoweredLp> {
        self.inner.as_ref().map(|c| &c.lowered)
    }

    /// Makes the cached lowering current for `model` and returns it:
    /// patches/appends in place when the layout is unchanged, rebuilds
    /// otherwise. (Solver constructions go through
    /// [`Self::refresh_solver`], which also hands out the workspace.)
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn refresh(&mut self, model: &Model) -> &LoweredLp {
        let cache = Self::refresh_fields(
            &mut self.inner,
            &mut self.stats,
            &mut self.factor_token,
            model,
        );
        &cache.lowered
    }

    /// [`Self::refresh`] for a solver construction: additionally hands out
    /// the slot's shared workspace, the worker-pool workspaces, and the
    /// matrix-generation token under which basis factors may be reused
    /// against the returned LP.
    pub(crate) fn refresh_solver(
        &mut self,
        model: &Model,
    ) -> (&LoweredLp, &mut LpWorkspace, &mut Vec<LpWorkspace>, u64) {
        let cache = Self::refresh_fields(
            &mut self.inner,
            &mut self.stats,
            &mut self.factor_token,
            model,
        );
        (
            &cache.lowered,
            &mut self.ws,
            &mut self.worker_ws,
            self.factor_token,
        )
    }

    /// Field-split worker behind [`Self::refresh`]/[`Self::refresh_solver`]:
    /// takes the slot's fields separately so the returned cache borrows only
    /// `inner`, leaving the workspace fields free for the solver tuple — and
    /// so a populated slot is guaranteed structurally (`Option::insert`
    /// returns the reference) rather than re-asserted with `expect`.
    fn refresh_fields<'a>(
        inner: &'a mut Option<LpCache>,
        stats: &mut CacheStats,
        factor_token: &mut u64,
        model: &Model,
    ) -> &'a mut LpCache {
        let reusable = inner.as_ref().is_some_and(|c| {
            c.structure_version == model.structure_version()
                && c.nvars == model.num_vars()
                && model.num_cons() >= c.ncons_lowered
                && c.folded
                    .iter()
                    .all(|&j| model.vars[j].lb == model.vars[j].ub)
        });
        let cache = match if reusable { inner.take() } else { None } {
            Some(mut cache) => {
                #[cfg(debug_assertions)]
                cache.verify_rows_unchanged(model);
                let kept_fixed = cache.patch(model);
                let appended = cache.append_new_rows(model);
                stats.appended_rows += appended;
                stats.patches += 1;
                if kept_fixed > 0 {
                    stats.refix_patches += 1;
                }
                if appended > 0 {
                    // Appended rows change the matrix: factors built against
                    // the previous shape must not re-attach.
                    *factor_token = next_factor_token();
                }
                cache
            }
            None => {
                let lowered = model.lower_reduced();
                let folded = lowered
                    .map
                    .col_of_var
                    .iter()
                    .enumerate()
                    .filter_map(|(j, c)| c.is_none().then_some(j))
                    .collect();
                stats.rebuilds += 1;
                *factor_token = next_factor_token();
                LpCache {
                    lowered,
                    structure_version: model.structure_version(),
                    nvars: model.num_vars(),
                    ncons_lowered: model.num_cons(),
                    folded,
                }
            }
        };
        inner.insert(cache)
    }
}

impl LpCache {
    /// Re-applies everything bound-dependent: column bounds (kept columns
    /// the model currently fixes simply collapse), row bounds of kept rows
    /// (fixed-term shifts recomputed at the *current* fixed values), the
    /// folded objective constant, and the constant-row feasibility verdict.
    /// Returns how many kept columns are currently bound-fixed (i.e. fixed
    /// outside the folded class).
    fn patch(&mut self, model: &Model) -> usize {
        let flip = if model.sense == Sense::Maximize {
            -1.0
        } else {
            1.0
        };
        let l = &mut self.lowered;
        let mut fixed_obj_min = 0.0;
        let mut infeasible = false;
        let mut kept_fixed = 0;
        for (j, v) in model.vars.iter().enumerate() {
            match l.map.col_of_var[j] {
                Some(col) => {
                    l.lp.set_col_bounds(col, v.lb, v.ub);
                    if v.lb == v.ub {
                        kept_fixed += 1;
                    }
                }
                None => {
                    if v.ty == VarType::Integer && (v.lb - v.lb.round()).abs() > 1e-9 {
                        infeasible = true;
                    }
                    fixed_obj_min += flip * v.obj * v.lb;
                }
            }
        }
        for row in 0..l.map.cons_of_row.len() {
            let ci = l.map.cons_of_row[row];
            let (_, clb, cub) = model.constraint(ci);
            let shift: f64 = l.row_fixed_terms[row]
                .iter()
                .map(|&(v, a)| a * model.vars[v].lb)
                .sum();
            let (lb, ub) = shifted_bounds(clb, cub, shift);
            l.lp.set_row_bounds(row, lb, ub);
        }
        for &ci in &l.const_rows {
            let (terms, clb, cub) = model.constraint(ci);
            let shift: f64 = terms.iter().map(|&(v, a)| a * model.vars[v.0].lb).sum();
            if const_row_violated(shift, clb, cub) {
                infeasible = true;
            }
        }
        l.map.fixed_obj_min = fixed_obj_min;
        l.map.infeasible_fixed_row = infeasible;
        kept_fixed
    }

    /// Lowers and appends every model constraint added since the cached
    /// lowering (cut rows); returns how many LP rows were appended.
    fn append_new_rows(&mut self, model: &Model) -> usize {
        let l = &mut self.lowered;
        let mut bounds: Vec<(f64, f64)> = Vec::new();
        let mut entries: Vec<Triplet> = Vec::new();
        let mut next_row = l.lp.nrows();
        for ci in self.ncons_lowered..model.num_cons() {
            let (terms, clb, cub) = model.constraint(ci);
            let fold = fold_constraint(&model.vars, &l.map.col_of_var, terms);
            if fold.kept.is_empty() {
                if const_row_violated(fold.shift, clb, cub) {
                    l.map.infeasible_fixed_row = true;
                }
                l.const_rows.push(ci);
                continue;
            }
            for (col, value) in fold.kept {
                entries.push(Triplet {
                    row: next_row,
                    col,
                    value,
                });
            }
            bounds.push(shifted_bounds(clb, cub, fold.shift));
            l.map.cons_of_row.push(ci);
            l.row_fixed_terms.push(fold.folded);
            next_row += 1;
        }
        let appended = bounds.len();
        if appended > 0 {
            l.lp.append_rows(&bounds, &entries);
        }
        self.ncons_lowered = model.num_cons();
        appended
    }

    /// Debug-build detection of the one staleness the cheap checks cannot
    /// see: an in-place mutation of already-lowered constraints that
    /// forgot to bump `structure_version` (e.g. a same-length constraint
    /// swap). Re-folds every cached row against the model and compares
    /// term-by-term; the folded lists and kept coefficients are
    /// bound-independent, so legitimate bound patches pass untouched.
    #[cfg(debug_assertions)]
    fn verify_rows_unchanged(&self, model: &Model) {
        let l = &self.lowered;
        for (row, &ci) in l.map.cons_of_row.iter().enumerate() {
            let (terms, _, _) = model.constraint(ci);
            let fold = fold_constraint(&model.vars, &l.map.col_of_var, terms);
            assert_eq!(
                fold.folded, l.row_fixed_terms[row],
                "cached row {row} (constraint {ci}) changed under the cache \
                 without a structure_version bump"
            );
            // Duplicate columns in a constraint are summed by the lowering.
            let mut kept = fold.kept;
            kept.sort_by_key(|&(col, _)| col);
            let mut k = 0;
            while k < kept.len() {
                let (col, mut sum) = kept[k];
                let mut r = k + 1;
                while r < kept.len() && kept[r].0 == col {
                    sum += kept[r].1;
                    r += 1;
                }
                assert!(
                    (l.lp.matrix().get(row, col) - sum).abs() <= 1e-12 * (1.0 + sum.abs()),
                    "cached row {row} (constraint {ci}) coefficient at column {col} \
                     changed under the cache without a structure_version bump"
                );
                k = r;
            }
        }
        for &ci in &l.const_rows {
            let (terms, _, _) = model.constraint(ci);
            let fold = fold_constraint(&model.vars, &l.map.col_of_var, terms);
            assert!(
                fold.kept.is_empty(),
                "cached constant row (constraint {ci}) grew free terms under \
                 the cache without a structure_version bump"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense, VarId};
    use sqpr_workload::rng::{Rng, StdRng};

    fn toy() -> Model {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary(3.0);
        let b = m.add_binary(2.0);
        let c = m.add_binary(1.0);
        m.add_le(vec![(a, 1.0), (b, 1.0), (c, 1.0)], 2.0);
        m.fix_var(c, 1.0);
        m
    }

    /// Bit-compatibility of a slot's current lowering against a fresh
    /// classed lowering over the same folded class.
    fn assert_matches_classed_fresh(slot: &LpCacheSlot, m: &Model) {
        let cached = slot.lowered().expect("slot populated");
        let mut class = vec![false; m.num_vars()];
        for (j, c) in cached.map.col_of_var.iter().enumerate() {
            class[j] = c.is_none();
        }
        let fresh = m.lower_reduced_for_class(&class);
        assert_eq!(cached.lp.ncols(), fresh.lp.ncols());
        assert_eq!(cached.lp.nrows(), fresh.lp.nrows());
        assert_eq!(cached.map.fixed_obj_min, fresh.map.fixed_obj_min);
        assert_eq!(
            cached.map.infeasible_fixed_row,
            fresh.map.infeasible_fixed_row
        );
        assert_eq!(cached.map.col_of_var, fresh.map.col_of_var);
        assert_eq!(cached.map.cons_of_row, fresh.map.cons_of_row);
        assert_eq!(cached.row_fixed_terms, fresh.row_fixed_terms);
        assert_eq!(cached.const_rows, fresh.const_rows);
        let (clb, cub) = cached.lp.col_bounds();
        let (flb, fub) = fresh.lp.col_bounds();
        assert_eq!(clb, flb, "column lower bounds diverged");
        assert_eq!(cub, fub, "column upper bounds diverged");
        let (crlb, crub) = cached.lp.row_bounds();
        let (frlb, frub) = fresh.lp.row_bounds();
        assert_eq!(crlb, frlb, "row lower bounds diverged");
        assert_eq!(crub, frub, "row upper bounds diverged");
        assert_eq!(cached.lp.objective(), fresh.lp.objective());
    }

    #[test]
    fn rebuild_then_patch_matches_fresh_lowering(// the cache must be bit-compatible with to_lp_reduced
    ) {
        let mut m = toy();
        let mut slot = LpCacheSlot::new();
        {
            let cached = slot.refresh(&m);
            let fresh = m.lower_reduced();
            assert_eq!(cached.lp.ncols(), fresh.lp.ncols());
            assert_eq!(cached.lp.nrows(), fresh.lp.nrows());
            assert_eq!(cached.map.fixed_obj_min, fresh.map.fixed_obj_min);
        }
        assert_eq!(slot.stats().rebuilds, 1);

        // Bound-only change with the same fixed set: c moves 1 -> 0.
        let c = VarId::from_raw(2);
        m.set_bounds(c, 0.0, 0.0);
        {
            let cached = slot.refresh(&m);
            let fresh = m.lower_reduced();
            assert_eq!(cached.map.fixed_obj_min, fresh.map.fixed_obj_min);
            let (clb, cub) = cached.lp.row_bounds();
            let (flb, fub) = fresh.lp.row_bounds();
            assert_eq!(clb, flb);
            assert_eq!(cub, fub);
        }
        assert_eq!(slot.stats().patches, 1);
        assert_eq!(slot.stats().refix_patches, 0);
    }

    #[test]
    fn appended_cut_rows_join_the_cached_lp() {
        let mut m = toy();
        let mut slot = LpCacheSlot::new();
        let before = slot.refresh(&m).lp.nrows();
        let a = VarId::from_raw(0);
        let b = VarId::from_raw(1);
        m.add_le(vec![(a, 1.0), (b, 1.0)], 1.0); // a cut
        {
            let cached = slot.refresh(&m);
            assert_eq!(cached.lp.nrows(), before + 1);
            let fresh = m.lower_reduced();
            assert_eq!(cached.lp.nrows(), fresh.lp.nrows());
            assert_eq!(
                cached.lp.matrix().get(before, 0),
                fresh.lp.matrix().get(before, 0)
            );
        }
        assert_eq!(slot.stats().patches, 1);
        assert_eq!(slot.stats().appended_rows, 1);
    }

    #[test]
    fn layout_change_invalidates() {
        let mut m = toy();
        let mut slot = LpCacheSlot::new();
        slot.refresh(&m);
        // Freeing the folded variable shrinks the class -> rebuild.
        let c = VarId::from_raw(2);
        m.set_bounds(c, 0.0, 1.0);
        slot.refresh(&m);
        assert_eq!(slot.stats().rebuilds, 2);
        // Adding a variable bumps the structure version -> rebuild.
        m.add_binary(1.0);
        slot.refresh(&m);
        assert_eq!(slot.stats().rebuilds, 3);
    }

    /// The cross-submission hit the fixed-*set* keying could not take:
    /// fixing a variable *outside* the folded class patches in place (the
    /// kept column collapses its bounds), bit-identical to a fresh classed
    /// lowering, and the refix is counted.
    #[test]
    fn refixing_a_superset_of_the_class_patches() {
        let mut m = toy(); // class = {c}
        let mut slot = LpCacheSlot::new();
        slot.refresh(&m);
        assert_eq!(slot.stats().rebuilds, 1);

        // Submission 2 pins a different superset: {a, c}, with c moved.
        let a = VarId::from_raw(0);
        let c = VarId::from_raw(2);
        m.fix_var(a, 1.0);
        m.set_bounds(c, 0.0, 0.0);
        slot.refresh(&m);
        assert_eq!(slot.stats().rebuilds, 1, "superset re-fix must not rebuild");
        assert_eq!(slot.stats().patches, 1);
        assert_eq!(slot.stats().refix_patches, 1);
        assert_matches_classed_fresh(&slot, &m);

        // Submission 3 releases a (back to the exact class, c at 0).
        m.set_bounds(a, 0.0, 1.0);
        slot.refresh(&m);
        assert_eq!(slot.stats().rebuilds, 1);
        assert_eq!(slot.stats().patches, 2);
        assert_eq!(
            slot.stats().refix_patches,
            1,
            "exact-class patch is not a refix"
        );
        assert_matches_classed_fresh(&slot, &m);
    }

    /// Regression test for the `fixed_signature` collision bug: two
    /// distinct fixed sets must never alias to the same layout. The class
    /// is now stored exactly, so a set that frees a folded member rebuilds
    /// (never reuses the wrong column numbering), and a set that merely
    /// differs outside the class patches onto a layout that remains
    /// bit-identical to the classed fresh lowering.
    #[test]
    fn distinct_fixed_sets_never_alias() {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<VarId> = (0..6).map(|i| m.add_binary(1.0 + i as f64)).collect();
        m.add_le(vars.iter().map(|&v| (v, 1.0)).collect(), 3.0);
        m.fix_var(vars[0], 1.0);
        m.fix_var(vars[1], 0.0);
        let mut slot = LpCacheSlot::new();
        slot.refresh(&m); // class = {0, 1}
        assert_matches_classed_fresh(&slot, &m);

        // Distinct set of the same size: {1, 2} — frees folded var 0.
        m.set_bounds(vars[0], 0.0, 1.0);
        m.fix_var(vars[2], 1.0);
        slot.refresh(&m);
        assert_eq!(
            slot.stats().rebuilds,
            2,
            "freeing a folded column must rebuild, whatever the set hashes to"
        );
        assert_matches_classed_fresh(&slot, &m);
        // The rebuilt layout folds the *current* fixed set {1, 2}: var 0
        // has an LP column again, vars 1 and 2 do not.
        let lowered = slot.lowered().unwrap();
        assert!(lowered.map.col_of_var[0].is_some());
        assert!(lowered.map.col_of_var[1].is_none());
        assert!(lowered.map.col_of_var[2].is_none());
    }

    /// Pins the invalidation contract the `num_cons() >= ncons_lowered`
    /// reuse guard relies on: constraints are append-only and every
    /// in-place term edit bumps `structure_version` (so the cache rebuilds
    /// rather than patching stale rows).
    #[test]
    fn in_place_term_edits_invalidate() {
        let mut m = toy();
        let mut slot = LpCacheSlot::new();
        slot.refresh(&m);
        let a = VarId::from_raw(0);
        m.add_terms(crate::model::ConsId(0), [(a, 0.5)]);
        slot.refresh(&m);
        assert_eq!(
            slot.stats().rebuilds,
            2,
            "adding terms to an existing row must invalidate the layout"
        );
        assert_eq!(slot.stats().patches, 0);
    }

    /// A same-length constraint swap that forgets the `structure_version`
    /// bump is undetectable by the cheap release-mode checks (same count,
    /// same version, same fixed class) — the debug verification pass must
    /// catch it instead of silently patching stale rows.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "without a structure_version bump")]
    fn same_length_row_swap_is_detected_in_debug() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary(3.0);
        let b = m.add_binary(2.0);
        m.add_le(vec![(a, 1.0)], 1.0);
        m.add_le(vec![(b, 1.0)], 1.0);
        let mut slot = LpCacheSlot::new();
        slot.refresh(&m);
        m.swap_constraints_unversioned_for_test(0, 1);
        slot.refresh(&m);
    }

    /// Seeded multi-submission property test: random re-fixing sequences
    /// over a fixed structure must keep the patched lowering bit-identical
    /// to a fresh classed lowering after every round (the cross-submission
    /// mirror of `rebuild_then_patch_matches_fresh_lowering`).
    #[test]
    fn random_refix_sequences_match_classed_fresh_lowerings() {
        for seed in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let nvars = 4 + rng.gen_index(5);
            let mut m = Model::new(Sense::Maximize);
            let vars: Vec<VarId> = (0..nvars)
                .map(|i| m.add_binary(1.0 + ((i * 7) % 5) as f64))
                .collect();
            for _ in 0..(1 + rng.gen_index(3)) {
                let mut terms: Vec<(VarId, f64)> = Vec::new();
                for &v in &vars {
                    if rng.gen_bool() {
                        terms.push((v, 1.0 + rng.gen_index(3) as f64));
                    }
                }
                if terms.is_empty() {
                    continue;
                }
                let rhs = 1.0 + rng.gen_index(2 * nvars) as f64;
                m.add_le(terms, rhs);
            }
            let mut slot = LpCacheSlot::new();
            for _round in 0..12 {
                // Re-fix a random subset at random binary values (the
                // planner's deployment-pin pattern).
                for &v in &vars {
                    if rng.gen_bool() {
                        let val = if rng.gen_bool() { 1.0 } else { 0.0 };
                        m.set_bounds(v, val, val);
                    } else {
                        m.set_bounds(v, 0.0, 1.0);
                    }
                }
                slot.refresh(&m);
                assert_matches_classed_fresh(&slot, &m);
            }
            let s = slot.stats();
            assert_eq!(s.rebuilds + s.patches, 12, "seed {seed}: {s:?}");
        }
    }

    /// The factor token is held across pure bound patches and renewed on
    /// matrix changes (rebuilds, appended rows).
    #[test]
    fn factor_token_tracks_matrix_changes() {
        let mut m = toy();
        let mut slot = LpCacheSlot::new();
        slot.refresh(&m);
        let t0 = slot.factor_token;
        assert_ne!(t0, 0, "a populated slot must claim a generation");
        // Pure bound patch: token held.
        let c = VarId::from_raw(2);
        m.set_bounds(c, 0.0, 0.0);
        slot.refresh(&m);
        assert_eq!(slot.factor_token, t0, "bound patches keep the matrix");
        // Appended cut row: matrix changed, token renewed.
        let a = VarId::from_raw(0);
        m.add_le(vec![(a, 1.0)], 1.0);
        slot.refresh(&m);
        let t1 = slot.factor_token;
        assert_ne!(t1, t0, "appended rows change the matrix");
        // Rebuild (freed folded column): token renewed again.
        m.set_bounds(c, 0.0, 1.0);
        slot.refresh(&m);
        assert_ne!(slot.factor_token, t1, "rebuilds change the matrix");
    }
}
