//! Cached compressed LP lowering, reused across B&B constructions.
//!
//! The compressed lowering re-scans every variable and term of the model —
//! acceptable once, but the SQPR planner constructs up to three [`crate::solver`]
//! searches per submission (cutting-plane rounds) over a persistent model
//! skeleton whose *structure* barely changes: between constructions only
//! bounds move (the §IV-A reduction re-fixing) and new rows are appended
//! (availability cuts). An [`LpCacheSlot`] keeps one lowered
//! [`sqpr_lp::Problem`] alive across those constructions and, instead of
//! rebuilding:
//!
//! - **patches column bounds** of free variables straight into the LP;
//! - **recomputes row bounds** from each kept row's stored fixed-term list
//!   (the folded constants move when the deployment state changes);
//! - **appends rows** for model constraints added since the lowering (cut
//!   rounds) — appended rows keep every existing column/row index stable,
//!   so LP bases remain valid warm-start hints across rounds;
//! - re-derives `fixed_obj_min` / `infeasible_fixed_row` and rechecks the
//!   dropped constant rows.
//!
//! The cache is only reusable while the compression *layout* is unchanged:
//! the model's [`Model::structure_version`] must match (no new variables,
//! no terms added to existing rows — i.e. no skeleton `extend` with real
//! content) and the set of bound-fixed variables must be identical (the
//! folded columns define the LP's column numbering). Both are checked on
//! every `LpCacheSlot::refresh`; a mismatch falls back to a full rebuild,
//! so staleness can cost a re-scan, never correctness.

use crate::model::{
    const_row_violated, fold_constraint, shifted_bounds, LoweredLp, Model, Sense, VarType,
};
use sqpr_lp::Triplet;

/// Counters describing how the cache behaved (exposed for ablation
/// reporting and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Full lowerings (cold constructions or layout invalidations).
    pub rebuilds: usize,
    /// In-place reuses (bound patch, possibly plus appended rows).
    pub patches: usize,
    /// Cut rows appended across all patches.
    pub appended_rows: usize,
}

/// A slot owning at most one cached lowering; see the module docs.
#[derive(Debug, Default)]
pub struct LpCacheSlot {
    inner: Option<LpCache>,
    stats: CacheStats,
}

#[derive(Debug)]
struct LpCache {
    lowered: LoweredLp,
    /// Model identity the layout was derived from.
    structure_version: u64,
    nvars: usize,
    /// Model constraints lowered so far (kept + dropped); anything beyond
    /// is an appended row.
    ncons_lowered: usize,
    /// Order-sensitive hash of the bound-fixed variable index set.
    fixed_sig: u64,
}

/// Hashes the set of bound-fixed variable indices (the compression layout).
fn fixed_signature(model: &Model) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for (j, v) in model.vars.iter().enumerate() {
        if v.lb == v.ub {
            h ^= j as u64 + 1;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

impl LpCacheSlot {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drops the cached lowering (the planner calls this alongside its own
    /// skeleton invalidation; a stale cache would also be caught by the
    /// validity checks, this just frees the memory eagerly).
    pub fn invalidate(&mut self) {
        self.inner = None;
    }

    /// The cached lowering, if one is populated.
    pub(crate) fn lowered(&self) -> Option<&LoweredLp> {
        self.inner.as_ref().map(|c| &c.lowered)
    }

    /// Makes the cached lowering current for `model` and returns it:
    /// patches/appends in place when the layout is unchanged, rebuilds
    /// otherwise.
    pub(crate) fn refresh(&mut self, model: &Model) -> &LoweredLp {
        let sig = fixed_signature(model);
        let reusable = self.inner.as_ref().is_some_and(|c| {
            c.structure_version == model.structure_version()
                && c.nvars == model.num_vars()
                && c.fixed_sig == sig
                && model.num_cons() >= c.ncons_lowered
        });
        if reusable {
            let cache = self.inner.as_mut().expect("checked above");
            cache.patch(model);
            self.stats.appended_rows += cache.append_new_rows(model);
            self.stats.patches += 1;
        } else {
            self.inner = Some(LpCache {
                lowered: model.lower_reduced(),
                structure_version: model.structure_version(),
                nvars: model.num_vars(),
                ncons_lowered: model.num_cons(),
                fixed_sig: sig,
            });
            self.stats.rebuilds += 1;
        }
        &self.inner.as_ref().expect("just ensured").lowered
    }
}

impl LpCache {
    /// Re-applies everything bound-dependent: column bounds of free
    /// variables, row bounds of kept rows (fixed-term shifts recomputed at
    /// the *current* fixed values), the folded objective constant, and the
    /// constant-row feasibility verdict.
    fn patch(&mut self, model: &Model) {
        let flip = if model.sense == Sense::Maximize {
            -1.0
        } else {
            1.0
        };
        let l = &mut self.lowered;
        let mut fixed_obj_min = 0.0;
        let mut infeasible = false;
        for (j, v) in model.vars.iter().enumerate() {
            match l.map.col_of_var[j] {
                Some(col) => l.lp.set_col_bounds(col, v.lb, v.ub),
                None => {
                    if v.ty == VarType::Integer && (v.lb - v.lb.round()).abs() > 1e-9 {
                        infeasible = true;
                    }
                    fixed_obj_min += flip * v.obj * v.lb;
                }
            }
        }
        for row in 0..l.map.cons_of_row.len() {
            let ci = l.map.cons_of_row[row];
            let (_, clb, cub) = model.constraint(ci);
            let shift: f64 = l.row_fixed_terms[row]
                .iter()
                .map(|&(v, a)| a * model.vars[v].lb)
                .sum();
            let (lb, ub) = shifted_bounds(clb, cub, shift);
            l.lp.set_row_bounds(row, lb, ub);
        }
        for &ci in &l.const_rows {
            let (terms, clb, cub) = model.constraint(ci);
            let shift: f64 = terms.iter().map(|&(v, a)| a * model.vars[v.0].lb).sum();
            if const_row_violated(shift, clb, cub) {
                infeasible = true;
            }
        }
        l.map.fixed_obj_min = fixed_obj_min;
        l.map.infeasible_fixed_row = infeasible;
    }

    /// Lowers and appends every model constraint added since the cached
    /// lowering (cut rows); returns how many LP rows were appended.
    fn append_new_rows(&mut self, model: &Model) -> usize {
        let l = &mut self.lowered;
        let mut bounds: Vec<(f64, f64)> = Vec::new();
        let mut entries: Vec<Triplet> = Vec::new();
        let mut next_row = l.lp.nrows();
        for ci in self.ncons_lowered..model.num_cons() {
            let (terms, clb, cub) = model.constraint(ci);
            let fold = fold_constraint(&model.vars, &l.map.col_of_var, terms);
            if fold.kept.is_empty() {
                if const_row_violated(fold.shift, clb, cub) {
                    l.map.infeasible_fixed_row = true;
                }
                l.const_rows.push(ci);
                continue;
            }
            for (col, value) in fold.kept {
                entries.push(Triplet {
                    row: next_row,
                    col,
                    value,
                });
            }
            bounds.push(shifted_bounds(clb, cub, fold.shift));
            l.map.cons_of_row.push(ci);
            l.row_fixed_terms.push(fold.folded);
            next_row += 1;
        }
        let appended = bounds.len();
        if appended > 0 {
            l.lp.append_rows(&bounds, &entries);
        }
        self.ncons_lowered = model.num_cons();
        appended
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    fn toy() -> Model {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary(3.0);
        let b = m.add_binary(2.0);
        let c = m.add_binary(1.0);
        m.add_le(vec![(a, 1.0), (b, 1.0), (c, 1.0)], 2.0);
        m.fix_var(c, 1.0);
        m
    }

    #[test]
    fn rebuild_then_patch_matches_fresh_lowering(// the cache must be bit-compatible with to_lp_reduced
    ) {
        let mut m = toy();
        let mut slot = LpCacheSlot::new();
        {
            let cached = slot.refresh(&m);
            let fresh = m.lower_reduced();
            assert_eq!(cached.lp.ncols(), fresh.lp.ncols());
            assert_eq!(cached.lp.nrows(), fresh.lp.nrows());
            assert_eq!(cached.map.fixed_obj_min, fresh.map.fixed_obj_min);
        }
        assert_eq!(slot.stats().rebuilds, 1);

        // Bound-only change with the same fixed set: c moves 1 -> 0.
        let c = crate::model::VarId::from_raw(2);
        m.set_bounds(c, 0.0, 0.0);
        {
            let cached = slot.refresh(&m);
            let fresh = m.lower_reduced();
            assert_eq!(cached.map.fixed_obj_min, fresh.map.fixed_obj_min);
            let (clb, cub) = cached.lp.row_bounds();
            let (flb, fub) = fresh.lp.row_bounds();
            assert_eq!(clb, flb);
            assert_eq!(cub, fub);
        }
        assert_eq!(slot.stats().patches, 1);
    }

    #[test]
    fn appended_cut_rows_join_the_cached_lp() {
        let mut m = toy();
        let mut slot = LpCacheSlot::new();
        let before = slot.refresh(&m).lp.nrows();
        let a = crate::model::VarId::from_raw(0);
        let b = crate::model::VarId::from_raw(1);
        m.add_le(vec![(a, 1.0), (b, 1.0)], 1.0); // a cut
        {
            let cached = slot.refresh(&m);
            assert_eq!(cached.lp.nrows(), before + 1);
            let fresh = m.lower_reduced();
            assert_eq!(cached.lp.nrows(), fresh.lp.nrows());
            assert_eq!(
                cached.lp.matrix().get(before, 0),
                fresh.lp.matrix().get(before, 0)
            );
        }
        assert_eq!(slot.stats().patches, 1);
        assert_eq!(slot.stats().appended_rows, 1);
    }

    #[test]
    fn layout_change_invalidates() {
        let mut m = toy();
        let mut slot = LpCacheSlot::new();
        slot.refresh(&m);
        // Freeing the fixed variable changes the folded set -> rebuild.
        let c = crate::model::VarId::from_raw(2);
        m.set_bounds(c, 0.0, 1.0);
        slot.refresh(&m);
        assert_eq!(slot.stats().rebuilds, 2);
        // Adding a variable bumps the structure version -> rebuild.
        m.add_binary(1.0);
        slot.refresh(&m);
        assert_eq!(slot.stats().rebuilds, 3);
    }
}
