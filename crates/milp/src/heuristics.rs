//! Primal heuristics for branch & bound.
//!
//! Both heuristics work on the minimisation-form LP and report candidate
//! incumbents `(objective, x)`; the caller validates them against the model
//! before accepting.

use sqpr_lp::{
    solve_with_bounds, solve_with_bounds_from_ws, BasisState, LpStatus, LpWorkspace, PivotCounts,
    Problem, SimplexOptions,
};

/// Maximum number of fixing rounds in a dive (defensive; a dive fixes at
/// least one variable per round so depth is bounded by the integer count).
const MAX_DIVE_DEPTH: usize = 400;

/// Diving heuristic: repeatedly fix the most fractional integer variable to
/// its nearest integer and re-solve the LP until the point is integral or
/// the dive dead-ends. Each fixing round warm-starts from the previous
/// round's basis (seeded by `basis`, typically the node relaxation's), so a
/// dive costs a few pivots per fixing instead of a full solve.
#[allow(clippy::too_many_arguments)]
pub fn dive(
    lp: &Problem,
    integers: &[usize],
    lb: &[f64],
    ub: &[f64],
    x0: &[f64],
    basis: Option<&BasisState>,
    lp_opts: &SimplexOptions,
    int_tol: f64,
    lp_iterations: &mut usize,
    lp_pivots: &mut PivotCounts,
    ws: &mut LpWorkspace,
) -> Option<(f64, Vec<f64>)> {
    let mut lb = lb.to_vec();
    let mut ub = ub.to_vec();
    let mut x = x0.to_vec();
    let mut objective = f64::NAN;
    let mut cur_basis: Option<BasisState> = basis.cloned();

    for _ in 0..MAX_DIVE_DEPTH {
        // Find the most fractional integer variable.
        let mut target: Option<(usize, f64, f64)> = None;
        for &j in integers {
            let frac = x[j] - x[j].floor();
            let dist = frac.min(1.0 - frac);
            if dist > int_tol && target.is_none_or(|(_, _, d)| dist > d) {
                target = Some((j, x[j], dist));
            }
        }
        let Some((j, v, _)) = target else {
            // Integral: snap and report.
            for &j in integers {
                x[j] = x[j].round();
            }
            if objective.is_nan() {
                objective = lp.objective_value(&x);
            }
            return Some((objective, x));
        };
        let (orig_lb, orig_ub) = (lb[j], ub[j]);
        let fixed = v.round().clamp(orig_lb, orig_ub);
        lb[j] = fixed;
        ub[j] = fixed;
        let sol = solve_with_bounds_from_ws(lp, &lb, &ub, cur_basis.as_ref(), lp_opts, ws);
        *lp_iterations += sol.iterations;
        lp_pivots.merge(&sol.pivots);
        match sol.status {
            LpStatus::Optimal => {
                x = sol.x;
                objective = sol.objective;
                cur_basis = sol.basis;
            }
            _ => {
                // Try the opposite rounding once before giving up.
                let alt = if fixed == v.floor() {
                    v.ceil()
                } else {
                    v.floor()
                };
                if alt < orig_lb - 1e-9 || alt > orig_ub + 1e-9 {
                    return None;
                }
                lb[j] = alt;
                ub[j] = alt;
                let sol = solve_with_bounds_from_ws(lp, &lb, &ub, cur_basis.as_ref(), lp_opts, ws);
                *lp_iterations += sol.iterations;
                lp_pivots.merge(&sol.pivots);
                if sol.status != LpStatus::Optimal {
                    return None;
                }
                x = sol.x;
                objective = sol.objective;
                cur_basis = sol.basis;
            }
        }
    }
    None
}

/// Simple rounding heuristic: round every integer to its nearest value
/// within bounds, then re-solve the LP over the continuous variables only.
pub fn round_and_complete(
    lp: &Problem,
    integers: &[usize],
    lb: &[f64],
    ub: &[f64],
    x0: &[f64],
    lp_opts: &SimplexOptions,
    lp_iterations: &mut usize,
) -> Option<(f64, Vec<f64>)> {
    let mut lb = lb.to_vec();
    let mut ub = ub.to_vec();
    for &j in integers {
        let v = x0[j].round().clamp(lb[j], ub[j]);
        lb[j] = v;
        ub[j] = v;
    }
    let sol = solve_with_bounds(lp, &lb, &ub, lp_opts);
    *lp_iterations += sol.iterations;
    if sol.status == LpStatus::Optimal {
        Some((sol.objective, sol.x))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqpr_lp::{ProblemBuilder, INF};

    /// min -x - y, x,y binary-relaxed, x + y <= 1.5.
    fn toy() -> Problem {
        let mut b = ProblemBuilder::new();
        let x = b.add_col(-1.0, 0.0, 1.0);
        let y = b.add_col(-1.0, 0.0, 1.0);
        let r = b.add_row(-INF, 1.5);
        b.set_coeff(r, x, 1.0);
        b.set_coeff(r, y, 1.0);
        b.build()
    }

    #[test]
    fn dive_reaches_integral_point() {
        let lp = toy();
        let mut iters = 0;
        let mut pivots = PivotCounts::default();
        let got = dive(
            &lp,
            &[0, 1],
            &[0.0, 0.0],
            &[1.0, 1.0],
            &[0.75, 0.75],
            None,
            &SimplexOptions::default(),
            1e-6,
            &mut iters,
            &mut pivots,
            &mut LpWorkspace::new(),
        );
        let (obj, x) = got.expect("dive should succeed");
        assert!(x.iter().all(|v| (v - v.round()).abs() < 1e-9));
        // Best integral point: one variable at 1, the other at 0 (sum<=1.5).
        assert!(obj <= -1.0 + 1e-9);
    }

    #[test]
    fn round_and_complete_basic() {
        let lp = toy();
        let mut iters = 0;
        let got = round_and_complete(
            &lp,
            &[0],
            &[0.0, 0.0],
            &[1.0, 1.0],
            &[0.9, 0.3],
            &SimplexOptions::default(),
            &mut iters,
        );
        let (_, x) = got.expect("feasible completion");
        assert_eq!(x[0], 1.0);
        assert!(x[1] <= 0.5 + 1e-9); // row forces y <= 0.5
    }

    #[test]
    fn dive_respects_infeasible_fixings() {
        // x + y = 1 with both fixed at 0 is infeasible; the dive must try
        // the alternative rounding and still find a point.
        let mut b = ProblemBuilder::new();
        let x = b.add_col(0.0, 0.0, 1.0);
        let y = b.add_col(0.0, 0.0, 1.0);
        let r = b.add_row(1.0, 1.0);
        b.set_coeff(r, x, 1.0);
        b.set_coeff(r, y, 1.0);
        let lp = b.build();
        let mut iters = 0;
        let mut pivots = PivotCounts::default();
        let got = dive(
            &lp,
            &[0, 1],
            &[0.0, 0.0],
            &[1.0, 1.0],
            &[0.5, 0.5],
            None,
            &SimplexOptions::default(),
            1e-6,
            &mut iters,
            &mut pivots,
            &mut LpWorkspace::new(),
        );
        let (_, x) = got.expect("dive should recover");
        assert!((x[0] + x[1] - 1.0).abs() < 1e-9);
    }
}
