//! # sqpr-milp
//!
//! A mixed-integer linear programming solver: modelling API plus branch &
//! bound over the [`sqpr_lp`] simplex, with rounding/diving primal
//! heuristics and deterministic solve budgets.
//!
//! The SQPR paper hands its planning model (a MILP) to CPLEX with a timeout
//! and deploys the best incumbent found. This crate reproduces that contract
//! without external solvers:
//!
//! ```
//! use sqpr_milp::{Model, Sense, MilpOptions, MilpStatus, solve};
//!
//! // Knapsack: max 10a + 13b + 7c  s.t.  3a + 4b + 2c <= 5.
//! let mut m = Model::new(Sense::Maximize);
//! let a = m.add_binary(10.0);
//! let b = m.add_binary(13.0);
//! let c = m.add_binary(7.0);
//! m.add_le(vec![(a, 3.0), (b, 4.0), (c, 2.0)], 5.0);
//! let r = solve(&m, &MilpOptions::default());
//! assert_eq!(r.status, MilpStatus::Optimal);
//! assert!((r.objective - 17.0).abs() < 1e-6);
//! ```

// Numeric kernels index several parallel arrays at once; iterator
// refactors would obscure the algebra.
#![allow(clippy::needless_range_loop)]

pub mod cache;
pub mod heuristics;
pub mod model;
pub mod presolve;
pub mod solver;

pub use cache::{CacheStats, LpCacheSlot};
pub use model::{ConsId, Model, Sense, VarId, VarType};
pub use solver::{
    solve, solve_filtered, solve_filtered_warm, solve_filtered_warm_cached, solve_preemptible,
    solve_warm, solve_warm_cached, solve_with_start, BasisEntity, IncumbentFilter, MilpOptions,
    MilpResult, MilpStatus, MilpWarmStart, ModelBasis, SearchState, SolveOutcome,
};
pub use sqpr_lp::{BasisState, BasisUpdate, LpWorkspace, PivotCounts, PricingRule, RatioTest};
