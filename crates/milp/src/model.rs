//! Mixed-integer linear programming model API.
//!
//! A thin, allocation-friendly modelling layer over [`sqpr_lp::Problem`]:
//! variables (continuous or integer) with bounds and objective coefficients,
//! ranged linear constraints, and an objective sense. The SQPR planner builds
//! one of these per arriving query.

use sqpr_lp::{Problem, ProblemBuilder, INF};

/// Identifies a variable within one [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Builds a `VarId` from a raw index (bounds are checked at use sites).
    pub(crate) fn from_raw(i: usize) -> Self {
        VarId(i)
    }
}

impl VarId {
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifies a constraint within one [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConsId(pub(crate) usize);

impl ConsId {
    pub fn index(self) -> usize {
        self.0
    }
}

/// Variable integrality class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarType {
    Continuous,
    /// Integer-valued within its bounds (binaries are integers in `[0, 1]`).
    Integer,
}

/// Objective sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    Minimize,
    Maximize,
}

#[derive(Debug, Clone)]
pub(crate) struct VarDef {
    pub ty: VarType,
    pub lb: f64,
    pub ub: f64,
    pub obj: f64,
    /// Exempt from compression: [`Model::lower_reduced`] keeps this
    /// variable as an LP column (with collapsed bounds) even while it is
    /// bound-fixed. See [`Model::set_fold_exempt`].
    pub no_fold: bool,
}

#[derive(Debug, Clone)]
pub(crate) struct ConsDef {
    pub terms: Vec<(VarId, f64)>,
    pub lb: f64,
    pub ub: f64,
}

/// Mapping between a [`Model`] and its compressed LP lowering
/// ([`Model::to_lp_reduced`]): which model variable each LP column stands
/// for, and which model constraint each LP row came from.
#[derive(Debug, Clone)]
pub(crate) struct LpMap {
    /// Model variable index per LP column.
    pub var_of_col: Vec<usize>,
    /// LP column per model variable (`None` for bound-fixed variables).
    pub col_of_var: Vec<Option<usize>>,
    /// Model constraint index per LP row.
    pub cons_of_row: Vec<usize>,
    /// Objective contribution (minimisation space) of the folded fixed
    /// variables; add to LP objectives to recover model-space bounds.
    pub fixed_obj_min: f64,
    /// A constant (all-fixed) row was violated by the fixed values: the
    /// model is infeasible as fixed, regardless of the free variables.
    pub infeasible_fixed_row: bool,
}

/// Splits one constraint's terms against a fixed-variable layout: free
/// variables keep their LP column, bound-fixed ones fold into the returned
/// `(folded, shift)` pair. The single source of truth for the compression
/// rule — [`Model::lower_reduced`] and the LP cache's row append must stay
/// bit-compatible, so both call this.
pub(crate) fn fold_constraint(
    vars: &[VarDef],
    col_of_var: &[Option<usize>],
    terms: &[(VarId, f64)],
) -> FoldedRow {
    let mut kept = Vec::new();
    let mut folded = Vec::new();
    let mut shift = 0.0;
    for &(v, a) in terms {
        match col_of_var[v.0] {
            Some(col) => kept.push((col, a)),
            None => {
                shift += a * vars[v.0].lb;
                folded.push((v.0, a));
            }
        }
    }
    FoldedRow {
        kept,
        folded,
        shift,
    }
}

/// One constraint folded by [`fold_constraint`].
pub(crate) struct FoldedRow {
    /// `(LP column, coeff)` terms of free variables.
    pub kept: Vec<(usize, f64)>,
    /// `(model var, coeff)` terms folded into the shift.
    pub folded: Vec<(usize, f64)>,
    /// Constant contribution of the folded terms at their fixed values.
    pub shift: f64,
}

/// Whether a constant (fully folded) row's value violates its bounds —
/// the fixing itself is infeasible then, regardless of the free variables.
pub(crate) fn const_row_violated(shift: f64, lb: f64, ub: f64) -> bool {
    let tol = 1e-6 * (1.0 + shift.abs());
    shift < lb - tol || shift > ub + tol
}

/// A kept row's bounds with the folded constant moved to the other side.
pub(crate) fn shifted_bounds(lb: f64, ub: f64, shift: f64) -> (f64, f64) {
    (
        if lb.is_finite() { lb - shift } else { lb },
        if ub.is_finite() { ub - shift } else { ub },
    )
}

/// Result of one compressed lowering ([`Model::lower_reduced`]): the LP,
/// its integer columns, the model↔LP map, and the folded bookkeeping an LP
/// cache needs to patch bounds in place without re-scanning the model.
#[derive(Debug, Clone)]
pub(crate) struct LoweredLp {
    pub lp: Problem,
    pub lp_integers: Vec<usize>,
    pub map: LpMap,
    /// Per kept LP row: the `(model var, coeff)` terms folded into its
    /// bounds because the variable was bound-fixed at lowering time.
    pub row_fixed_terms: Vec<Vec<(usize, f64)>>,
    /// Model constraints dropped as constant (every term bound-fixed).
    pub const_rows: Vec<usize>,
}

/// A mixed-integer linear program.
#[derive(Debug, Clone)]
pub struct Model {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<VarDef>,
    pub(crate) cons: Vec<ConsDef>,
    /// Bumped by every mutation that changes existing columns or terms
    /// (new variables, terms appended to existing rows, objective edits).
    /// Bound changes and *appended* rows do not bump it: those are exactly
    /// the deltas a cached LP lowering ([`crate::cache::LpCacheSlot`]) can
    /// patch in place without re-scanning the model.
    pub(crate) structure_version: u64,
}

impl Model {
    pub fn new(sense: Sense) -> Self {
        Model {
            sense,
            vars: Vec::new(),
            cons: Vec::new(),
            structure_version: 0,
        }
    }

    /// Monotone counter identifying the model's column/term structure; see
    /// the field docs for what does and does not bump it.
    pub fn structure_version(&self) -> u64 {
        self.structure_version
    }

    pub fn sense(&self) -> Sense {
        self.sense
    }

    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    pub fn num_cons(&self) -> usize {
        self.cons.len()
    }

    /// Adds a variable; returns its id.
    ///
    /// # Panics
    /// Panics if `lb > ub` or either bound is NaN.
    pub fn add_var(&mut self, ty: VarType, lb: f64, ub: f64, obj: f64) -> VarId {
        assert!(!lb.is_nan() && !ub.is_nan(), "NaN bound");
        assert!(lb <= ub, "crossed bounds [{lb}, {ub}]");
        let id = VarId(self.vars.len());
        self.vars.push(VarDef {
            ty,
            lb,
            ub,
            obj,
            no_fold: false,
        });
        self.structure_version += 1;
        id
    }

    /// Adds a binary (0/1) variable.
    pub fn add_binary(&mut self, obj: f64) -> VarId {
        self.add_var(VarType::Integer, 0.0, 1.0, obj)
    }

    /// Adds a continuous variable.
    pub fn add_continuous(&mut self, lb: f64, ub: f64, obj: f64) -> VarId {
        self.add_var(VarType::Continuous, lb, ub, obj)
    }

    /// Adds the ranged constraint `lb <= sum terms <= ub`; returns its id.
    /// Duplicate variables in `terms` are summed.
    pub fn add_range(&mut self, lb: f64, ub: f64, terms: Vec<(VarId, f64)>) -> ConsId {
        assert!(lb <= ub, "crossed row bounds [{lb}, {ub}]");
        for &(v, _) in &terms {
            assert!(v.0 < self.vars.len(), "unknown variable {v:?}");
        }
        let id = ConsId(self.cons.len());
        self.cons.push(ConsDef { terms, lb, ub });
        id
    }

    /// Adds `sum terms <= rhs`.
    pub fn add_le(&mut self, terms: Vec<(VarId, f64)>, rhs: f64) -> ConsId {
        self.add_range(-INF, rhs, terms)
    }

    /// Adds `sum terms >= rhs`.
    pub fn add_ge(&mut self, terms: Vec<(VarId, f64)>, rhs: f64) -> ConsId {
        self.add_range(rhs, INF, terms)
    }

    /// Adds `sum terms == rhs`.
    pub fn add_eq(&mut self, terms: Vec<(VarId, f64)>, rhs: f64) -> ConsId {
        self.add_range(rhs, rhs, terms)
    }

    /// Fixes a variable to `value` by collapsing its bounds.
    ///
    /// # Panics
    /// Panics if `value` lies outside the current bounds by more than 1e-9.
    pub fn fix_var(&mut self, v: VarId, value: f64) {
        let def = &mut self.vars[v.0];
        assert!(
            value >= def.lb - 1e-9 && value <= def.ub + 1e-9,
            "fixing {v:?} to {value} outside [{}, {}]",
            def.lb,
            def.ub
        );
        let clamped = value.clamp(def.lb, def.ub);
        def.lb = clamped;
        def.ub = clamped;
    }

    /// Tightens a variable's bounds (no-op directions use `-INF`/`INF`).
    pub fn set_bounds(&mut self, v: VarId, lb: f64, ub: f64) {
        let def = &mut self.vars[v.0];
        def.lb = lb;
        def.ub = ub;
        assert!(def.lb <= def.ub, "crossed bounds for {v:?}");
    }

    pub fn var_bounds(&self, v: VarId) -> (f64, f64) {
        let d = &self.vars[v.0];
        (d.lb, d.ub)
    }

    /// Marks a variable exempt from (or re-eligible for) compression:
    /// exempt variables keep their LP column in `lower_reduced`
    /// even while bound-fixed, so a later solve that re-frees them can be
    /// served by patching the cached lowering's bounds instead of paying a
    /// relayout. A caller that knows which fixed variables are *likely to
    /// be re-freed soon* (e.g. a planner's currently-unserved queries)
    /// trades a slightly wider LP for cross-submission cache hits.
    ///
    /// Exemptions are a compression *hint*, not model semantics: they do
    /// not change the feasible set or the objective, and therefore do not
    /// bump [`Self::structure_version`] — an existing cached layout keeps
    /// its own folded class until its next rebuild.
    pub fn set_fold_exempt(&mut self, v: VarId, exempt: bool) {
        self.vars[v.0].no_fold = exempt;
    }

    pub fn var_type(&self, v: VarId) -> VarType {
        self.vars[v.0].ty
    }

    pub fn objective_coeff(&self, v: VarId) -> f64 {
        self.vars[v.0].obj
    }

    /// Sets (replaces) a variable's objective coefficient.
    pub fn set_objective_coeff(&mut self, v: VarId, obj: f64) {
        self.vars[v.0].obj = obj;
        self.structure_version += 1;
    }

    /// Returns constraint `c` as `(terms, lb, ub)`.
    pub fn constraint(&self, c: usize) -> (&[(VarId, f64)], f64, f64) {
        let def = &self.cons[c];
        (&def.terms, def.lb, def.ub)
    }

    /// Replaces a constraint's bounds (used by incremental model editing,
    /// e.g. relaxing a `<= 1` demand row to `= 1` on admission).
    pub fn set_row_bounds(&mut self, c: ConsId, lb: f64, ub: f64) {
        assert!(lb <= ub, "crossed row bounds [{lb}, {ub}]");
        let def = &mut self.cons[c.0];
        def.lb = lb;
        def.ub = ub;
    }

    /// Appends terms to an existing constraint (incremental model growth:
    /// new columns joining shared capacity rows). Duplicate variables are
    /// summed, as in [`Self::add_range`].
    pub fn add_terms(&mut self, c: ConsId, terms: impl IntoIterator<Item = (VarId, f64)>) {
        let n = self.vars.len();
        let def = &mut self.cons[c.0];
        for (v, a) in terms {
            assert!(v.0 < n, "unknown variable {v:?}");
            def.terms.push((v, a));
        }
        self.structure_version += 1;
    }

    /// Test-only contract violation: swaps two constraints in place
    /// *without* bumping `structure_version`. No public mutation can do
    /// this — every API that edits existing terms bumps the version — but
    /// the LP cache's same-length-swap detection needs a way to simulate a
    /// future API forgetting the bump (see
    /// [`crate::cache::LpCacheSlot::refresh`]'s debug verification).
    #[cfg(test)]
    pub(crate) fn swap_constraints_unversioned_for_test(&mut self, a: usize, b: usize) {
        self.cons.swap(a, b);
    }

    /// Evaluates the objective in the model's own sense.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.vars.iter().zip(x).map(|(v, xv)| v.obj * xv).sum()
    }

    /// Checks whether `x` satisfies bounds, constraints and integrality.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.vars.len() {
            return false;
        }
        for (def, &xv) in self.vars.iter().zip(x) {
            if xv < def.lb - tol || xv > def.ub + tol {
                return false;
            }
            if def.ty == VarType::Integer && (xv - xv.round()).abs() > tol {
                return false;
            }
        }
        for c in &self.cons {
            let act: f64 = c.terms.iter().map(|&(v, a)| a * x[v.0]).sum();
            if act < c.lb - tol * (1.0 + c.lb.abs()) || act > c.ub + tol * (1.0 + c.ub.abs()) {
                return false;
            }
        }
        true
    }

    /// Lowers the model to a *compressed* LP in minimisation form:
    /// bound-fixed variables (`lb == ub`) are folded into the row bounds as
    /// constants and rows left with no free terms are dropped. Models that
    /// fix large portions of their variables (the planner's §IV-A
    /// reduction over a persistent skeleton) produce an LP the size of the
    /// genuinely free subproblem instead of the whole skeleton.
    ///
    /// Returns the problem, the LP-space indices of integer columns, and
    /// the [`LpMap`] relating LP columns/rows back to model
    /// variables/constraints.
    pub(crate) fn to_lp_reduced(&self) -> (Problem, Vec<usize>, LpMap) {
        let l = self.lower_reduced();
        (l.lp, l.lp_integers, l.map)
    }

    /// Full compressed lowering, additionally reporting the folded
    /// bookkeeping an LP cache needs to patch the result in place later:
    /// the fixed-variable contributions of every kept row and the list of
    /// dropped (constant) rows. See [`crate::cache::LpCacheSlot`].
    ///
    /// Folds the variables that are bound-fixed *right now* and not
    /// fold-exempt ([`Self::set_fold_exempt`]) — the widest class the
    /// exemption hints allow.
    pub(crate) fn lower_reduced(&self) -> LoweredLp {
        let folded: Vec<bool> = self
            .vars
            .iter()
            .map(|v| v.lb == v.ub && !v.no_fold)
            .collect();
        self.lower_reduced_for_class(&folded)
    }

    /// [`Self::lower_reduced`] with an explicit folded class: only the
    /// variables with `folded[j] == true` are compressed out (each must be
    /// bound-fixed); fixed variables *outside* the class keep their LP
    /// column with collapsed bounds. This is the layout contract of the
    /// cross-submission LP cache ([`crate::cache::LpCacheSlot`]): the
    /// cached layout folds the class captured at build time, and a later
    /// submission that re-fixes a *different* superset of that class
    /// patches bounds in place — the patched result must be bit-identical
    /// to lowering fresh under the same class, which is exactly what the
    /// cache's property tests assert through this entry point.
    pub(crate) fn lower_reduced_for_class(&self, folded: &[bool]) -> LoweredLp {
        debug_assert_eq!(folded.len(), self.vars.len());
        let flip = if self.sense == Sense::Maximize {
            -1.0
        } else {
            1.0
        };
        let mut b = ProblemBuilder::new();
        let mut integers = Vec::new();
        let mut col_of_var = vec![None; self.vars.len()];
        let mut var_of_col = Vec::new();
        let mut fixed_obj_min = 0.0;
        let mut infeasible_fixed_row = false;
        for (j, v) in self.vars.iter().enumerate() {
            if folded[j] {
                debug_assert!(v.lb == v.ub, "folded class member {j} is not bound-fixed");
                // A fixed integer variable must sit on an integer value,
                // else the fixing is infeasible regardless of the rest.
                if v.ty == VarType::Integer && (v.lb - v.lb.round()).abs() > 1e-9 {
                    infeasible_fixed_row = true;
                }
                fixed_obj_min += flip * v.obj * v.lb;
                continue;
            }
            let col = b.add_col(flip * v.obj, v.lb, v.ub);
            col_of_var[j] = Some(col);
            var_of_col.push(j);
            if v.ty == VarType::Integer {
                integers.push(col);
            }
        }
        let mut cons_of_row = Vec::new();
        let mut row_fixed_terms = Vec::new();
        let mut const_rows = Vec::new();
        for (ci, c) in self.cons.iter().enumerate() {
            let fold = fold_constraint(&self.vars, &col_of_var, &c.terms);
            if fold.kept.is_empty() {
                if const_row_violated(fold.shift, c.lb, c.ub) {
                    infeasible_fixed_row = true;
                }
                const_rows.push(ci);
                continue;
            }
            let (lb, ub) = shifted_bounds(c.lb, c.ub, fold.shift);
            let r = b.add_row(lb, ub);
            for (col, a) in fold.kept {
                b.set_coeff(r, col, a);
            }
            cons_of_row.push(ci);
            row_fixed_terms.push(fold.folded);
        }
        LoweredLp {
            lp: b.build(),
            lp_integers: integers,
            map: LpMap {
                col_of_var,
                var_of_col,
                cons_of_row,
                fixed_obj_min,
                infeasible_fixed_row,
            },
            row_fixed_terms,
            const_rows,
        }
    }

    /// Lowers the model to an LP [`Problem`] in *minimisation* form
    /// (objective negated if this model maximises), plus the list of
    /// integer variable indices.
    #[allow(dead_code)]
    pub(crate) fn to_lp(&self) -> (Problem, Vec<usize>) {
        let flip = if self.sense == Sense::Maximize {
            -1.0
        } else {
            1.0
        };
        let mut b = ProblemBuilder::new();
        let mut integers = Vec::new();
        for (j, v) in self.vars.iter().enumerate() {
            b.add_col(flip * v.obj, v.lb, v.ub);
            if v.ty == VarType::Integer {
                integers.push(j);
            }
        }
        for c in &self.cons {
            let r = b.add_row(c.lb, c.ub);
            // Merge duplicate terms (CSC builder also merges, but make the
            // intent explicit for logically duplicated entries).
            for &(v, a) in &c.terms {
                b.set_coeff(r, v.0, a);
            }
        }
        (b.build(), integers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_construction_and_feasibility() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary(3.0);
        let y = m.add_continuous(0.0, 2.0, 1.0);
        m.add_le(vec![(x, 1.0), (y, 1.0)], 2.5);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_cons(), 1);
        assert!(m.is_feasible(&[1.0, 1.5], 1e-9));
        assert!(!m.is_feasible(&[0.5, 1.0], 1e-9)); // fractional binary
        assert!(!m.is_feasible(&[1.0, 2.0], 1e-9)); // row violated
        assert_eq!(m.objective_value(&[1.0, 1.5]), 4.5);
    }

    #[test]
    fn fix_var_collapses_bounds() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary(1.0);
        m.fix_var(x, 1.0);
        assert_eq!(m.var_bounds(x), (1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn fix_var_rejects_out_of_bounds() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary(1.0);
        m.fix_var(x, 2.0);
    }

    #[test]
    fn to_lp_flips_objective_for_max() {
        let mut m = Model::new(Sense::Maximize);
        m.add_binary(3.0);
        let (lp, ints) = m.to_lp();
        assert_eq!(lp.objective(), &[-3.0]);
        assert_eq!(ints, vec![0]);
    }

    #[test]
    fn duplicate_terms_are_summed() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous(0.0, 10.0, 1.0);
        m.add_eq(vec![(x, 1.0), (x, 2.0)], 6.0);
        // 3x = 6 -> x = 2 feasible
        assert!(m.is_feasible(&[2.0], 1e-9));
        assert!(!m.is_feasible(&[6.0], 1e-9));
    }
}
