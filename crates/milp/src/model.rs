//! Mixed-integer linear programming model API.
//!
//! A thin, allocation-friendly modelling layer over [`sqpr_lp::Problem`]:
//! variables (continuous or integer) with bounds and objective coefficients,
//! ranged linear constraints, and an objective sense. The SQPR planner builds
//! one of these per arriving query.

use sqpr_lp::{Problem, ProblemBuilder, INF};

/// Identifies a variable within one [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Builds a `VarId` from a raw index (bounds are checked at use sites).
    pub(crate) fn from_raw(i: usize) -> Self {
        VarId(i)
    }
}

impl VarId {
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifies a constraint within one [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConsId(pub(crate) usize);

/// Variable integrality class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarType {
    Continuous,
    /// Integer-valued within its bounds (binaries are integers in `[0, 1]`).
    Integer,
}

/// Objective sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    Minimize,
    Maximize,
}

#[derive(Debug, Clone)]
pub(crate) struct VarDef {
    pub ty: VarType,
    pub lb: f64,
    pub ub: f64,
    pub obj: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct ConsDef {
    pub terms: Vec<(VarId, f64)>,
    pub lb: f64,
    pub ub: f64,
}

/// A mixed-integer linear program.
#[derive(Debug, Clone)]
pub struct Model {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<VarDef>,
    pub(crate) cons: Vec<ConsDef>,
}

impl Model {
    pub fn new(sense: Sense) -> Self {
        Model {
            sense,
            vars: Vec::new(),
            cons: Vec::new(),
        }
    }

    pub fn sense(&self) -> Sense {
        self.sense
    }

    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    pub fn num_cons(&self) -> usize {
        self.cons.len()
    }

    /// Adds a variable; returns its id.
    ///
    /// # Panics
    /// Panics if `lb > ub` or either bound is NaN.
    pub fn add_var(&mut self, ty: VarType, lb: f64, ub: f64, obj: f64) -> VarId {
        assert!(!lb.is_nan() && !ub.is_nan(), "NaN bound");
        assert!(lb <= ub, "crossed bounds [{lb}, {ub}]");
        let id = VarId(self.vars.len());
        self.vars.push(VarDef { ty, lb, ub, obj });
        id
    }

    /// Adds a binary (0/1) variable.
    pub fn add_binary(&mut self, obj: f64) -> VarId {
        self.add_var(VarType::Integer, 0.0, 1.0, obj)
    }

    /// Adds a continuous variable.
    pub fn add_continuous(&mut self, lb: f64, ub: f64, obj: f64) -> VarId {
        self.add_var(VarType::Continuous, lb, ub, obj)
    }

    /// Adds the ranged constraint `lb <= sum terms <= ub`; returns its id.
    /// Duplicate variables in `terms` are summed.
    pub fn add_range(&mut self, lb: f64, ub: f64, terms: Vec<(VarId, f64)>) -> ConsId {
        assert!(lb <= ub, "crossed row bounds [{lb}, {ub}]");
        for &(v, _) in &terms {
            assert!(v.0 < self.vars.len(), "unknown variable {v:?}");
        }
        let id = ConsId(self.cons.len());
        self.cons.push(ConsDef { terms, lb, ub });
        id
    }

    /// Adds `sum terms <= rhs`.
    pub fn add_le(&mut self, terms: Vec<(VarId, f64)>, rhs: f64) -> ConsId {
        self.add_range(-INF, rhs, terms)
    }

    /// Adds `sum terms >= rhs`.
    pub fn add_ge(&mut self, terms: Vec<(VarId, f64)>, rhs: f64) -> ConsId {
        self.add_range(rhs, INF, terms)
    }

    /// Adds `sum terms == rhs`.
    pub fn add_eq(&mut self, terms: Vec<(VarId, f64)>, rhs: f64) -> ConsId {
        self.add_range(rhs, rhs, terms)
    }

    /// Fixes a variable to `value` by collapsing its bounds.
    ///
    /// # Panics
    /// Panics if `value` lies outside the current bounds by more than 1e-9.
    pub fn fix_var(&mut self, v: VarId, value: f64) {
        let def = &mut self.vars[v.0];
        assert!(
            value >= def.lb - 1e-9 && value <= def.ub + 1e-9,
            "fixing {v:?} to {value} outside [{}, {}]",
            def.lb,
            def.ub
        );
        let clamped = value.clamp(def.lb, def.ub);
        def.lb = clamped;
        def.ub = clamped;
    }

    /// Tightens a variable's bounds (no-op directions use `-INF`/`INF`).
    pub fn set_bounds(&mut self, v: VarId, lb: f64, ub: f64) {
        let def = &mut self.vars[v.0];
        def.lb = lb;
        def.ub = ub;
        assert!(def.lb <= def.ub, "crossed bounds for {v:?}");
    }

    pub fn var_bounds(&self, v: VarId) -> (f64, f64) {
        let d = &self.vars[v.0];
        (d.lb, d.ub)
    }

    pub fn var_type(&self, v: VarId) -> VarType {
        self.vars[v.0].ty
    }

    pub fn objective_coeff(&self, v: VarId) -> f64 {
        self.vars[v.0].obj
    }

    /// Sets (replaces) a variable's objective coefficient.
    pub fn set_objective_coeff(&mut self, v: VarId, obj: f64) {
        self.vars[v.0].obj = obj;
    }

    /// Returns constraint `c` as `(terms, lb, ub)`.
    pub fn constraint(&self, c: usize) -> (&[(VarId, f64)], f64, f64) {
        let def = &self.cons[c];
        (&def.terms, def.lb, def.ub)
    }

    /// Evaluates the objective in the model's own sense.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.vars.iter().zip(x).map(|(v, xv)| v.obj * xv).sum()
    }

    /// Checks whether `x` satisfies bounds, constraints and integrality.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.vars.len() {
            return false;
        }
        for (def, &xv) in self.vars.iter().zip(x) {
            if xv < def.lb - tol || xv > def.ub + tol {
                return false;
            }
            if def.ty == VarType::Integer && (xv - xv.round()).abs() > tol {
                return false;
            }
        }
        for c in &self.cons {
            let act: f64 = c.terms.iter().map(|&(v, a)| a * x[v.0]).sum();
            if act < c.lb - tol * (1.0 + c.lb.abs()) || act > c.ub + tol * (1.0 + c.ub.abs()) {
                return false;
            }
        }
        true
    }

    /// Lowers the model to an LP [`Problem`] in *minimisation* form
    /// (objective negated if this model maximises), plus the list of
    /// integer variable indices.
    pub(crate) fn to_lp(&self) -> (Problem, Vec<usize>) {
        let flip = if self.sense == Sense::Maximize {
            -1.0
        } else {
            1.0
        };
        let mut b = ProblemBuilder::new();
        let mut integers = Vec::new();
        for (j, v) in self.vars.iter().enumerate() {
            b.add_col(flip * v.obj, v.lb, v.ub);
            if v.ty == VarType::Integer {
                integers.push(j);
            }
        }
        for c in &self.cons {
            let r = b.add_row(c.lb, c.ub);
            // Merge duplicate terms (CSC builder also merges, but make the
            // intent explicit for logically duplicated entries).
            for &(v, a) in &c.terms {
                b.set_coeff(r, v.0, a);
            }
        }
        (b.build(), integers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_construction_and_feasibility() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary(3.0);
        let y = m.add_continuous(0.0, 2.0, 1.0);
        m.add_le(vec![(x, 1.0), (y, 1.0)], 2.5);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_cons(), 1);
        assert!(m.is_feasible(&[1.0, 1.5], 1e-9));
        assert!(!m.is_feasible(&[0.5, 1.0], 1e-9)); // fractional binary
        assert!(!m.is_feasible(&[1.0, 2.0], 1e-9)); // row violated
        assert_eq!(m.objective_value(&[1.0, 1.5]), 4.5);
    }

    #[test]
    fn fix_var_collapses_bounds() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary(1.0);
        m.fix_var(x, 1.0);
        assert_eq!(m.var_bounds(x), (1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn fix_var_rejects_out_of_bounds() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary(1.0);
        m.fix_var(x, 2.0);
    }

    #[test]
    fn to_lp_flips_objective_for_max() {
        let mut m = Model::new(Sense::Maximize);
        m.add_binary(3.0);
        let (lp, ints) = m.to_lp();
        assert_eq!(lp.objective(), &[-3.0]);
        assert_eq!(ints, vec![0]);
    }

    #[test]
    fn duplicate_terms_are_summed() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous(0.0, 10.0, 1.0);
        m.add_eq(vec![(x, 1.0), (x, 2.0)], 6.0);
        // 3x = 6 -> x = 2 feasible
        assert!(m.is_feasible(&[2.0], 1e-9));
        assert!(!m.is_feasible(&[6.0], 1e-9));
    }
}
