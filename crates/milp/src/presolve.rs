//! Presolve: iterated bound propagation over the linear constraints.
//!
//! Computes tightened column bounds before branch & bound starts — without
//! mutating the model itself, so decoding stays untouched. For every row
//! `lb <= Σ a_j x_j <= ub`, the activity range implied by the current
//! bounds yields residual bounds per variable; integer variables round
//! inward. Big-M models like SQPR's benefit: acyclicity and availability
//! rows fix many binaries once a few others are pinned.

/// Result of presolving: tightened bounds, or proven infeasibility.
#[derive(Debug, Clone)]
pub enum Presolved {
    /// Tightened `(lb, ub)` per column (safe to hand to branch & bound).
    Bounds(Vec<f64>, Vec<f64>),
    /// The bound propagation derived an empty domain.
    Infeasible,
}

use crate::model::{Model, VarType};

const TOL: f64 = 1e-9;

/// Runs up to `max_rounds` propagation sweeps.
pub fn presolve_bounds(model: &Model, max_rounds: usize) -> Presolved {
    // Rows whose variables are all bound-fixed are constants: check them
    // once and exclude them from the propagation sweeps. Skeleton models
    // fix most of their variables per submission, so this turns the sweep
    // cost from O(model) into O(free subproblem).
    let mut active = Vec::with_capacity(model.num_cons());
    for c in 0..model.num_cons() {
        let (terms, row_lb, row_ub) = model.constraint(c);
        let mut any_free = false;
        let mut act = 0.0;
        for &(v, a) in terms {
            let (l, u) = model.var_bounds(v);
            if l < u {
                any_free = true;
                break;
            }
            act += a * l;
        }
        if any_free {
            active.push(c);
        } else if act > row_ub + TOL * (1.0 + act.abs()) || act < row_lb - TOL * (1.0 + act.abs()) {
            return Presolved::Infeasible;
        }
    }
    presolve_bounds_active(model, max_rounds, &active)
}

/// Like [`presolve_bounds`], but skips the row-classification scan:
/// `active` lists the rows known to contain at least one unfixed variable —
/// exactly the kept rows of a compressed LP lowering, so callers holding an
/// `crate::model::LpMap` reuse its `cons_of_row` for free. Constant-row
/// feasibility is then the lowering's responsibility
/// (`infeasible_fixed_row`), not this function's.
pub fn presolve_bounds_active(model: &Model, max_rounds: usize, active: &[usize]) -> Presolved {
    let n = model.num_vars();
    let mut lb = Vec::with_capacity(n);
    let mut ub = Vec::with_capacity(n);
    let mut integer = Vec::with_capacity(n);
    for j in 0..n {
        let v = crate::model::VarId::from_raw(j);
        let (l, u) = model.var_bounds(v);
        lb.push(l);
        ub.push(u);
        integer.push(model.var_type(v) == VarType::Integer);
    }

    for _ in 0..max_rounds {
        let mut changed = false;
        for &c in active {
            let (terms, row_lb, row_ub) = model.constraint(c);
            // Activity range under current bounds.
            let mut min_act = 0.0f64;
            let mut max_act = 0.0f64;
            for &(v, a) in terms {
                let (l, u) = (lb[v.index()], ub[v.index()]);
                if a >= 0.0 {
                    min_act += a * l;
                    max_act += a * u;
                } else {
                    min_act += a * u;
                    max_act += a * l;
                }
            }
            if min_act > row_ub + TOL || max_act < row_lb - TOL {
                return Presolved::Infeasible;
            }
            if !min_act.is_finite() && !max_act.is_finite() {
                continue; // unbounded in both directions: nothing to learn
            }
            for &(v, a) in terms {
                if a == 0.0 {
                    continue;
                }
                let j = v.index();
                let (l, u) = (lb[j], ub[j]);
                // This variable's own contribution range.
                let (c_min, c_max) = if a >= 0.0 {
                    (a * l, a * u)
                } else {
                    (a * u, a * l)
                };
                // Residual activity of the other variables.
                let rest_min = min_act - c_min;
                let rest_max = max_act - c_max;
                // a*x <= row_ub - rest_min  and  a*x >= row_lb - rest_max.
                if rest_min.is_finite() && row_ub.is_finite() {
                    let hi = row_ub - rest_min;
                    if a > 0.0 {
                        let mut new_ub = hi / a;
                        if integer[j] {
                            new_ub = (new_ub + TOL).floor();
                        }
                        if new_ub < ub[j] - TOL {
                            ub[j] = new_ub;
                            changed = true;
                        }
                    } else {
                        let mut new_lb = hi / a;
                        if integer[j] {
                            new_lb = (new_lb - TOL).ceil();
                        }
                        if new_lb > lb[j] + TOL {
                            lb[j] = new_lb;
                            changed = true;
                        }
                    }
                }
                if rest_max.is_finite() && row_lb.is_finite() {
                    let lo = row_lb - rest_max;
                    if a > 0.0 {
                        let mut new_lb = lo / a;
                        if integer[j] {
                            new_lb = (new_lb - TOL).ceil();
                        }
                        if new_lb > lb[j] + TOL {
                            lb[j] = new_lb;
                            changed = true;
                        }
                    } else {
                        let mut new_ub = lo / a;
                        if integer[j] {
                            new_ub = (new_ub + TOL).floor();
                        }
                        if new_ub < ub[j] - TOL {
                            ub[j] = new_ub;
                            changed = true;
                        }
                    }
                }
                if lb[j] > ub[j] + TOL {
                    return Presolved::Infeasible;
                }
                // Snap crossed-by-rounding integer bounds.
                if lb[j] > ub[j] {
                    let mid = lb[j];
                    ub[j] = mid;
                }
            }
        }
        if !changed {
            break;
        }
    }
    Presolved::Bounds(lb, ub)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    #[test]
    fn fixes_forced_binaries() {
        // x + y >= 2 with binaries forces both to 1.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary(1.0);
        let y = m.add_binary(1.0);
        m.add_ge(vec![(x, 1.0), (y, 1.0)], 2.0);
        match presolve_bounds(&m, 4) {
            Presolved::Bounds(lb, ub) => {
                assert_eq!(lb, vec![1.0, 1.0]);
                assert_eq!(ub, vec![1.0, 1.0]);
            }
            Presolved::Infeasible => panic!("feasible model"),
        }
    }

    #[test]
    fn detects_infeasibility() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary(1.0);
        m.add_ge(vec![(x, 1.0)], 2.0); // x >= 2 impossible for a binary
        assert!(matches!(presolve_bounds(&m, 4), Presolved::Infeasible));
    }

    #[test]
    fn integer_rounding_tightens() {
        // 2x <= 5 with x integer: x <= 2.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(VarType::Integer, 0.0, 10.0, 1.0);
        m.add_le(vec![(x, 1.0)], 2.5);
        match presolve_bounds(&m, 4) {
            Presolved::Bounds(_, ub) => assert_eq!(ub[0], 2.0),
            _ => panic!(),
        }
    }

    #[test]
    fn propagates_through_chains() {
        // a = 1 forced; a + b <= 1 -> b = 0; b + c >= 1... c = 1? b=0 so c>=1.
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary(0.0);
        let b = m.add_binary(0.0);
        let c = m.add_binary(0.0);
        m.add_ge(vec![(a, 1.0)], 1.0);
        m.add_le(vec![(a, 1.0), (b, 1.0)], 1.0);
        m.add_ge(vec![(b, 1.0), (c, 1.0)], 1.0);
        match presolve_bounds(&m, 8) {
            Presolved::Bounds(lb, ub) => {
                assert_eq!((lb[0], ub[0]), (1.0, 1.0));
                assert_eq!((lb[1], ub[1]), (0.0, 0.0));
                assert_eq!((lb[2], ub[2]), (1.0, 1.0));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn negative_coefficients() {
        // -x <= -1 forces binary x = 1.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary(0.0);
        m.add_le(vec![(x, -1.0)], -1.0);
        match presolve_bounds(&m, 4) {
            Presolved::Bounds(lb, _) => assert_eq!(lb[0], 1.0),
            _ => panic!(),
        }
    }

    #[test]
    fn leaves_loose_models_alone() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary(1.0);
        let y = m.add_binary(1.0);
        m.add_le(vec![(x, 1.0), (y, 1.0)], 2.0); // non-binding
        match presolve_bounds(&m, 4) {
            Presolved::Bounds(lb, ub) => {
                assert_eq!(lb, vec![0.0, 0.0]);
                assert_eq!(ub, vec![1.0, 1.0]);
            }
            _ => panic!(),
        }
    }
}
