//! Branch & bound over LP relaxations.
//!
//! Best-bound node selection, most-fractional branching with objective
//! tie-breaks, rounding and diving primal heuristics, and deterministic
//! budgets (node counts) with optional wall-clock limits — mirroring how the
//! paper drives CPLEX with a per-query timeout and takes the incumbent.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;
use std::time::{Duration, Instant};

use sqpr_lp::{solve_with_bounds, LpStatus, Problem, SimplexOptions};

use crate::heuristics;
use crate::model::{Model, Sense};
use crate::presolve::{presolve_bounds, Presolved};

/// Options for one branch & bound run.
#[derive(Debug, Clone)]
pub struct MilpOptions {
    /// Maximum number of branch & bound nodes (deterministic budget).
    /// 0 means a large default (1 million).
    pub max_nodes: usize,
    /// Optional wall-clock limit; checked between nodes.
    pub time_limit: Option<Duration>,
    /// Relative optimality gap at which the search stops early.
    pub gap_tol: f64,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Run the diving heuristic every this many nodes (0 disables).
    pub dive_every: usize,
    /// Run presolve bound propagation before the search (default on).
    pub presolve: bool,
    /// LP subproblem options.
    pub lp: SimplexOptions,
}

impl Default for MilpOptions {
    fn default() -> Self {
        MilpOptions {
            max_nodes: 0,
            time_limit: None,
            gap_tol: 1e-6,
            int_tol: 1e-6,
            dive_every: 64,
            presolve: true,
            lp: SimplexOptions::default(),
        }
    }
}

/// Termination status of a MILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MilpStatus {
    /// Incumbent proven optimal (tree exhausted or gap below tolerance).
    Optimal,
    /// Budget exhausted with a feasible incumbent in hand.
    Feasible,
    /// Proven infeasible.
    Infeasible,
    /// LP relaxation unbounded.
    Unbounded,
    /// Budget exhausted before any feasible point was found.
    Unknown,
}

/// Result of a MILP solve. `objective`/`best_bound` are reported in the
/// model's own sense (for maximisation, `best_bound >= objective`).
#[derive(Debug, Clone)]
pub struct MilpResult {
    pub status: MilpStatus,
    pub objective: f64,
    pub best_bound: f64,
    pub x: Option<Vec<f64>>,
    pub nodes: usize,
    pub lp_iterations: usize,
    /// Relative gap `|objective - best_bound| / max(1, |objective|)`.
    pub gap: f64,
}

impl MilpResult {
    pub fn has_solution(&self) -> bool {
        self.x.is_some()
    }
}

/// One chained bound tightening (child nodes point at their parents).
struct BoundChange {
    var: usize,
    lb: f64,
    ub: f64,
    parent: Option<Rc<BoundChange>>,
}

struct Node {
    /// Valid lower bound (minimisation space) inherited from the parent LP.
    est: f64,
    depth: usize,
    chain: Option<Rc<BoundChange>>,
}

/// Max-heap wrapper turning `BinaryHeap` into best-first (smallest bound).
struct OrdNode(Node);

impl PartialEq for OrdNode {
    fn eq(&self, other: &Self) -> bool {
        self.0.est == other.0.est
    }
}
impl Eq for OrdNode {}
impl PartialOrd for OrdNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdNode {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: smaller est = higher priority. Tie-break on depth
        // (prefer deeper nodes: closer to integral).
        other
            .0
            .est
            .partial_cmp(&self.0.est)
            .unwrap_or(Ordering::Equal)
            .then(self.0.depth.cmp(&other.0.depth))
    }
}

/// Solves the model by branch & bound.
pub fn solve(model: &Model, opts: &MilpOptions) -> MilpResult {
    solve_with_start(model, opts, None)
}

/// Solves the model, optionally seeded with a known-feasible starting point
/// (used by SQPR to warm-start from the heuristic planner's plan).
pub fn solve_with_start(model: &Model, opts: &MilpOptions, start: Option<&[f64]>) -> MilpResult {
    Bnb::new(model, opts, start, None).run()
}

/// Like [`solve_with_start`], with an *incumbent filter*: integral solutions
/// the filter rejects are discarded instead of becoming incumbents. This is
/// the lazy-constraint hook — side conditions that are expensive to encode
/// as rows (e.g. SQPR's acyclicity) can be enforced on candidates only.
/// The start point, if given, bypasses the filter (the caller vouches).
pub fn solve_filtered(
    model: &Model,
    opts: &MilpOptions,
    start: Option<&[f64]>,
    filter: &dyn Fn(&[f64]) -> bool,
) -> MilpResult {
    Bnb::new(model, opts, start, Some(filter)).run()
}

struct Bnb<'a> {
    model: &'a Model,
    opts: &'a MilpOptions,
    filter: Option<&'a dyn Fn(&[f64]) -> bool>,
    lp: Problem,
    integers: Vec<usize>,
    /// Incumbent in minimisation space.
    incumbent: Option<(f64, Vec<f64>)>,
    nodes_done: usize,
    lp_iterations: usize,
    heap: BinaryHeap<OrdNode>,
    root_lb: Vec<f64>,
    root_ub: Vec<f64>,
    presolve_infeasible: bool,
    deadline: Option<Instant>,
}

impl<'a> Bnb<'a> {
    fn new(
        model: &'a Model,
        opts: &'a MilpOptions,
        start: Option<&[f64]>,
        filter: Option<&'a dyn Fn(&[f64]) -> bool>,
    ) -> Self {
        let (lp, integers) = model.to_lp();
        let (lb, ub) = lp.col_bounds();
        let mut root_lb = lb.to_vec();
        let mut root_ub = ub.to_vec();
        let mut presolve_infeasible = false;
        if opts.presolve {
            match presolve_bounds(model, 6) {
                Presolved::Bounds(plb, pub_) => {
                    root_lb = plb;
                    root_ub = pub_;
                }
                Presolved::Infeasible => presolve_infeasible = true,
            }
        }
        let flip = if model.sense == Sense::Maximize {
            -1.0
        } else {
            1.0
        };
        let incumbent = start.and_then(|x| {
            if model.is_feasible(x, opts.int_tol.max(1e-7)) {
                Some((flip * model.objective_value(x), x.to_vec()))
            } else {
                None
            }
        });
        Bnb {
            model,
            opts,
            filter,
            lp,
            integers,
            incumbent,
            nodes_done: 0,
            lp_iterations: 0,
            heap: BinaryHeap::new(),
            root_lb,
            root_ub,
            presolve_infeasible,
            deadline: opts.time_limit.map(|d| Instant::now() + d),
        }
    }

    fn flip(&self) -> f64 {
        if self.model.sense == Sense::Maximize {
            -1.0
        } else {
            1.0
        }
    }

    fn materialize(&self, chain: &Option<Rc<BoundChange>>, lb: &mut [f64], ub: &mut [f64]) {
        lb.copy_from_slice(&self.root_lb);
        ub.copy_from_slice(&self.root_ub);
        let mut cur = chain.as_ref();
        while let Some(c) = cur {
            // Intersection keeps correctness regardless of chain order.
            if c.lb > lb[c.var] {
                lb[c.var] = c.lb;
            }
            if c.ub < ub[c.var] {
                ub[c.var] = c.ub;
            }
            cur = c.parent.as_ref();
        }
    }

    /// Picks the integer variable to branch on: most fractional value,
    /// ties broken by larger |objective| then smaller index.
    fn pick_branching(&self, x: &[f64], lb: &[f64], ub: &[f64]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64, f64)> = None;
        for &j in &self.integers {
            if lb[j] >= ub[j] {
                continue; // fixed
            }
            let frac = x[j] - x[j].floor();
            let dist = frac.min(1.0 - frac);
            if dist <= self.opts.int_tol {
                continue;
            }
            let score = dist * (1.0 + self.lp.objective()[j].abs());
            if best.is_none_or(|(_, _, s)| score > s) {
                best = Some((j, x[j], score));
            }
        }
        best.map(|(j, v, _)| (j, v))
    }

    fn is_integral(&self, x: &[f64]) -> bool {
        self.integers
            .iter()
            .all(|&j| (x[j] - x[j].round()).abs() <= self.opts.int_tol)
    }

    /// Considers a candidate incumbent (minimisation objective).
    fn offer_incumbent(&mut self, obj: f64, x: Vec<f64>) {
        // Snap integers exactly before validating against the model.
        let mut snapped = x;
        for &j in &self.integers {
            snapped[j] = snapped[j].round();
        }
        let model_x_ok = self.model.is_feasible(&snapped, 1e-5);
        if !model_x_ok {
            return;
        }
        if let Some(filter) = self.filter {
            if !filter(&snapped) {
                return;
            }
        }
        let true_obj = self.flip() * self.model.objective_value(&snapped);
        if self
            .incumbent
            .as_ref()
            .is_none_or(|(best, _)| true_obj < *best - 1e-12)
        {
            let _ = obj;
            self.incumbent = Some((true_obj, snapped));
        }
    }

    fn out_of_budget(&self) -> bool {
        let max_nodes = if self.opts.max_nodes == 0 {
            1_000_000
        } else {
            self.opts.max_nodes
        };
        if self.nodes_done >= max_nodes {
            return true;
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        false
    }

    fn run(mut self) -> MilpResult {
        if self.presolve_infeasible {
            // A warm start contradicting presolve would indicate a bug in
            // propagation; the model validator already vetted it, so treat
            // presolve as authoritative only when no start exists.
            if self.incumbent.is_none() {
                return self.report(MilpStatus::Infeasible, f64::INFINITY);
            }
        }
        let n = self.lp.ncols();
        let mut lb = vec![0.0; n];
        let mut ub = vec![0.0; n];

        // Root node.
        self.heap.push(OrdNode(Node {
            est: f64::NEG_INFINITY,
            depth: 0,
            chain: None,
        }));

        let mut proven_infeasible_tree = true; // until a node survives
        let mut best_open_bound = f64::NEG_INFINITY;
        let mut budget_hit = false;

        while let Some(OrdNode(node)) = self.heap.pop() {
            // Global pruning: with best-first search, once the best open
            // node cannot beat the incumbent, the incumbent is optimal.
            if let Some((inc, _)) = &self.incumbent {
                if node.est >= inc - 1e-9 {
                    proven_infeasible_tree = false;
                    best_open_bound = *inc;
                    // All other open nodes are at least as bad.
                    self.heap.clear();
                    break;
                }
                let gap = (inc - node.est).abs() / inc.abs().max(1.0);
                if gap <= self.opts.gap_tol {
                    proven_infeasible_tree = false;
                    best_open_bound = node.est;
                    self.heap.clear();
                    break;
                }
            }
            if self.out_of_budget() {
                budget_hit = true;
                best_open_bound = node.est;
                proven_infeasible_tree = false;
                break;
            }
            self.nodes_done += 1;

            self.materialize(&node.chain, &mut lb, &mut ub);
            let sol = solve_with_bounds(&self.lp, &lb, &ub, &self.opts.lp);
            self.lp_iterations += sol.iterations;

            match sol.status {
                LpStatus::Infeasible => continue,
                LpStatus::Unbounded => {
                    if node.depth == 0 {
                        return self.report(MilpStatus::Unbounded, f64::NEG_INFINITY);
                    }
                    continue; // child unbounded implies root unbounded; defensive
                }
                LpStatus::Optimal | LpStatus::IterationLimit => {}
            }
            proven_infeasible_tree = false;

            // A non-optimal LP termination gives no trustworthy bound;
            // inherit the parent's.
            let node_bound = if sol.status == LpStatus::Optimal {
                sol.objective
            } else {
                node.est
            };
            if let Some((inc, _)) = &self.incumbent {
                if node_bound >= inc - 1e-9 {
                    continue;
                }
            }

            if sol.status == LpStatus::Optimal && self.is_integral(&sol.x) {
                self.offer_incumbent(sol.objective, sol.x);
                continue;
            }

            // Primal heuristics from this relaxation point.
            if self.nodes_done == 1
                || (self.opts.dive_every > 0
                    && self.nodes_done.is_multiple_of(self.opts.dive_every))
            {
                if let Some((obj, x)) = heuristics::dive(
                    &self.lp,
                    &self.integers,
                    &lb,
                    &ub,
                    &sol.x,
                    &self.opts.lp,
                    self.opts.int_tol,
                    &mut self.lp_iterations,
                ) {
                    self.offer_incumbent(obj, x);
                }
            }

            // Branch.
            let Some((var, value)) = self.pick_branching(&sol.x, &lb, &ub) else {
                // Numerically integral but is_integral said no (tolerance
                // edge): offer as incumbent and move on.
                if sol.status == LpStatus::Optimal {
                    self.offer_incumbent(sol.objective, sol.x);
                }
                continue;
            };
            let floor = value.floor();
            let down = Rc::new(BoundChange {
                var,
                lb: lb[var],
                ub: floor,
                parent: node.chain.clone(),
            });
            let up = Rc::new(BoundChange {
                var,
                lb: floor + 1.0,
                ub: ub[var],
                parent: node.chain.clone(),
            });
            if floor >= lb[var] - 1e-9 {
                self.heap.push(OrdNode(Node {
                    est: node_bound,
                    depth: node.depth + 1,
                    chain: Some(down),
                }));
            }
            if floor + 1.0 <= ub[var] + 1e-9 {
                self.heap.push(OrdNode(Node {
                    est: node_bound,
                    depth: node.depth + 1,
                    chain: Some(up),
                }));
            }
        }

        // Determine final status.
        let status = if budget_hit {
            if self.incumbent.is_some() {
                MilpStatus::Feasible
            } else {
                MilpStatus::Unknown
            }
        } else if self.incumbent.is_some() {
            MilpStatus::Optimal
        } else if proven_infeasible_tree || self.heap.is_empty() {
            MilpStatus::Infeasible
        } else {
            MilpStatus::Unknown
        };
        let bound = if status == MilpStatus::Optimal {
            self.incumbent.as_ref().map(|(o, _)| *o).unwrap_or(0.0)
        } else {
            // Best open bound seen when we stopped.
            best_open_bound
        };
        self.report(status, bound)
    }

    fn report(self, status: MilpStatus, bound_min: f64) -> MilpResult {
        let flip = self.flip();
        let (objective, x) = match &self.incumbent {
            Some((obj, x)) => (flip * obj, Some(x.clone())),
            None => (f64::NAN, None),
        };
        let best_bound = flip * bound_min;
        let gap = match &self.incumbent {
            Some((obj, _)) if bound_min.is_finite() => (obj - bound_min).abs() / obj.abs().max(1.0),
            _ => f64::INFINITY,
        };
        MilpResult {
            status,
            objective,
            best_bound,
            x,
            nodes: self.nodes_done,
            lp_iterations: self.lp_iterations,
            gap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VarType;

    fn default_opts() -> MilpOptions {
        MilpOptions::default()
    }

    #[test]
    fn pure_lp_passthrough() {
        // No integer variables: one LP solve.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous(0.0, 4.0, 1.0);
        let y = m.add_continuous(0.0, 4.0, 1.0);
        m.add_le(vec![(x, 1.0), (y, 1.0)], 5.0);
        let r = solve(&m, &default_opts());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective - 5.0).abs() < 1e-6);
    }

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c st 3a + 4b + 2c <= 5, binary. Best: a+c = 17.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary(10.0);
        let b = m.add_binary(13.0);
        let c = m.add_binary(7.0);
        m.add_le(vec![(a, 3.0), (b, 4.0), (c, 2.0)], 5.0);
        let r = solve(&m, &default_opts());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective - 17.0).abs() < 1e-6, "{}", r.objective);
        let x = r.x.unwrap();
        assert_eq!(
            x.iter().map(|v| v.round() as i32).collect::<Vec<_>>(),
            vec![1, 0, 1]
        );
    }

    #[test]
    fn integer_rounding_not_optimal() {
        // Classic example where LP rounding fails:
        // max x + y st 2x + 2y <= 3, x,y binary => optimum 1 (not 1.5 rounded).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary(1.0);
        let y = m.add_binary(1.0);
        m.add_le(vec![(x, 2.0), (y, 2.0)], 3.0);
        let r = solve(&m, &default_opts());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_milp() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary(1.0);
        let y = m.add_binary(1.0);
        m.add_ge(vec![(x, 1.0), (y, 1.0)], 3.0);
        let r = solve(&m, &default_opts());
        assert_eq!(r.status, MilpStatus::Infeasible);
        assert!(r.x.is_none());
    }

    #[test]
    fn general_integers() {
        // min 2x + 3y st x + y >= 7.5, x,y integer in [0, 10] => 16 at (7.5->
        // e.g. x=8 y=0 cost 16; check alternatives: x=7,y=1 => 17).
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(VarType::Integer, 0.0, 10.0, 2.0);
        let y = m.add_var(VarType::Integer, 0.0, 10.0, 3.0);
        m.add_ge(vec![(x, 1.0), (y, 1.0)], 7.5);
        let r = solve(&m, &default_opts());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective - 16.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constrained_assignment() {
        // 2x2 assignment: min cost matrix [[1, 10], [10, 1]]; optimum 2.
        let mut m = Model::new(Sense::Minimize);
        let x00 = m.add_binary(1.0);
        let x01 = m.add_binary(10.0);
        let x10 = m.add_binary(10.0);
        let x11 = m.add_binary(1.0);
        m.add_eq(vec![(x00, 1.0), (x01, 1.0)], 1.0);
        m.add_eq(vec![(x10, 1.0), (x11, 1.0)], 1.0);
        m.add_eq(vec![(x00, 1.0), (x10, 1.0)], 1.0);
        m.add_eq(vec![(x01, 1.0), (x11, 1.0)], 1.0);
        let r = solve(&m, &default_opts());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn warm_start_is_used() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary(10.0);
        let b = m.add_binary(13.0);
        let c = m.add_binary(7.0);
        m.add_le(vec![(a, 3.0), (b, 4.0), (c, 2.0)], 5.0);
        // Start at the suboptimal {b} = 13.
        let start = [0.0, 1.0, 0.0];
        let mut opts = default_opts();
        opts.max_nodes = 1; // only the root
        let r = solve_with_start(&m, &opts, Some(&start));
        // Even with a tiny budget we must report at least the start value.
        assert!(r.objective >= 13.0 - 1e-9);
        assert!(r.has_solution());
    }

    #[test]
    fn node_budget_reports_feasible() {
        // A larger knapsack that needs more than one node, with a tight
        // budget: status must be Feasible (not Optimal) when budget binds,
        // or Optimal if the heuristics close the gap first.
        let mut m = Model::new(Sense::Maximize);
        let weights = [5.0, 4.0, 3.0, 7.0, 6.0, 2.0, 9.0, 8.0];
        let values = [10.0, 7.0, 5.0, 13.0, 11.0, 3.0, 16.0, 14.0];
        let vars: Vec<_> = values.iter().map(|&v| m.add_binary(v)).collect();
        m.add_le(
            vars.iter()
                .zip(weights.iter())
                .map(|(&v, &w)| (v, w))
                .collect(),
            20.0,
        );
        let mut opts = default_opts();
        opts.max_nodes = 3;
        let r = solve(&m, &opts);
        assert!(matches!(
            r.status,
            MilpStatus::Feasible | MilpStatus::Optimal
        ));
        if let Some(x) = &r.x {
            assert!(m.is_feasible(x, 1e-6));
        }
    }

    #[test]
    fn maximisation_bound_direction() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary(5.0);
        let b = m.add_binary(4.0);
        m.add_le(vec![(a, 1.0), (b, 1.0)], 1.0);
        let r = solve(&m, &default_opts());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective - 5.0).abs() < 1e-6);
        assert!(r.best_bound >= r.objective - 1e-6);
        assert!(r.gap < 1e-5);
    }
}

#[cfg(test)]
mod filter_tests {
    use super::*;

    /// max a + b st a + b <= 2 (binaries): optimum (1,1). A filter that
    /// rejects (1,1) must yield the next-best accepted point.
    #[test]
    fn incumbent_filter_rejects_solutions() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary(2.0);
        let b = m.add_binary(1.0);
        m.add_le(vec![(a, 1.0), (b, 1.0)], 2.0);
        let reject_both = |x: &[f64]| !(x[0] > 0.5 && x[1] > 0.5);
        let r = solve_filtered(&m, &MilpOptions::default(), None, &reject_both);
        // (1,1) filtered out; best accepted is (1,0) = 2.
        if let Some(x) = &r.x {
            assert!(reject_both(x), "returned solution violates the filter");
            assert!(r.objective <= 2.0 + 1e-9);
        }
    }

    /// The warm start bypasses the filter (caller vouches for it).
    #[test]
    fn start_bypasses_filter() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary(1.0);
        m.add_le(vec![(a, 1.0)], 1.0);
        let reject_all = |_: &[f64]| false;
        let start = [1.0];
        let mut opts = MilpOptions::default();
        opts.max_nodes = 1;
        let r = solve_filtered(&m, &opts, Some(&start), &reject_all);
        assert!(r.has_solution());
        assert!((r.objective - 1.0).abs() < 1e-9);
    }
}
