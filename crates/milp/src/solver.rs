//! Branch & bound over LP relaxations.
//!
//! Best-bound node selection, most-fractional branching with objective
//! tie-breaks, rounding and diving primal heuristics, and deterministic
//! budgets (node counts) with optional wall-clock limits — mirroring how the
//! paper drives CPLEX with a per-query timeout and takes the incumbent.
//!
//! # Parallel node evaluation
//!
//! With [`MilpOptions::threads`] != 1 the search spreads node-LP evaluation
//! over a std-only worker pool while keeping the search *byte-identical*
//! to the sequential run — see ARCHITECTURE.md §"Concurrency model". The
//! short version: a node's LP relaxation is a pure function of the node
//! (its materialised bounds, its parent's basis hint, and its parent's
//! final factorisation, carried as the node's `seed`), so the pool merely
//! *pre-computes* results for the top frontier nodes speculatively; the
//! main thread still pops, prunes, branches and accepts incumbents one
//! node at a time in exactly the sequential order, consuming memoized
//! results where present and evaluating inline where not. Speculative
//! results the replay never consumes are discarded — counters included —
//! so trees, incumbents, objectives and `lp_iterations`/`lp_pivots` do
//! not depend on the thread count.
//!
//! # Preemption
//!
//! [`solve_preemptible`] runs the same search in *slices* of a caller-set
//! node quantum: when the quantum expires the search suspends at the next
//! node boundary into an owning [`SearchState`] (frontier heap, incumbent,
//! eval memo, node-id counter, factor token) that can be parked
//! indefinitely and resumed with [`SearchState::resume`]. Because a cut
//! happens strictly between node evaluations, node evaluation is pure,
//! and the pop order is total, an uninterrupted run and any sequence of
//! suspend/resume cuts produce bit-identical trees, pivot counts and
//! objective bits — at every thread count. A suspend never invalidates the
//! caller's [`LpCacheSlot`]: the slot keeps serving other submissions
//! while the suspended search is parked.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::rc::Rc;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sqpr_lp::{
    solve_with_bounds_recovering_ws, BasisState, FactorState, LpSolution, LpStatus, LpWorkspace,
    PivotCounts, Problem, SimplexOptions, VarBasisStatus,
};

use crate::cache::{next_factor_token, LpCacheSlot};
use crate::heuristics;
use crate::model::{LpMap, Model, Sense};
use crate::presolve::{presolve_bounds_active, Presolved};

/// The tree's LP workspaces: the main workspace every replayed node solve
/// and dive runs in, plus the worker-pool workspaces handed to parallel
/// evaluators. Both are borrowed from the caller's [`LpCacheSlot`] on the
/// cached path — the slot's main workspace (and the detached basis-factor
/// cache inside it) survives between the slot's consecutive constructions,
/// which is what lets a root solve re-attach the previous tree's
/// factorisation when the matrix generation is unchanged — and from the
/// entry point's stack frame on the cacheless path.
struct WsStore<'a> {
    main: &'a mut LpWorkspace,
    workers: &'a mut Vec<LpWorkspace>,
}

/// Incumbent filter callback (lazy-constraint hook): integral candidates
/// it rejects never become the incumbent.
pub type IncumbentFilter<'a> = &'a dyn Fn(&[f64]) -> bool;

/// Nodes processed before the worker pool spawns: trees smaller than this
/// never pay thread startup. Purely a wall-clock knob — whether (and when)
/// the pool spawns is unobservable in the search's outputs, because
/// speculative evaluation computes exactly what the replay would.
const POOL_SPAWN_NODES: usize = 16;

/// Bound-vs-incumbent pruning tolerance under the Harris ratio tests.
/// Sized to dominate the LP's primal noise floor: the Harris test
/// deliberately admits per-variable bound violations (a small fraction of
/// the feasibility tolerance, see `sqpr_lp`), which — multiplied by large
/// objective coefficients — can land a relaxation objective slightly
/// *below* the exact vertex optimum. With an epsilon tighter than that
/// noise, nodes that tie the incumbent exactly (the overwhelmingly common
/// case on the planner's degenerate assignment models) would survive
/// pruning and inflate the tree.
const PRUNE_EPS_HARRIS: f64 = 1e-6;

/// Pruning tolerance under [`sqpr_lp::RatioTest::Classic`], whose ratio
/// test never overruns a bound — the ablation baseline stays exact.
const PRUNE_EPS_EXACT: f64 = 1e-9;

/// One seat of a [`ModelBasis`]: either a model variable or the slack of a
/// model constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BasisEntity {
    Var(usize),
    Cons(usize),
}

/// A simplex basis expressed in *model* coordinates (variable and
/// constraint indices) rather than LP columns.
///
/// The planner's persistent skeleton fixes a different subset of variables
/// every submission, so the compressed LP's column layout shifts between
/// solves even though the model only ever appends variables and rows. A
/// `ModelBasis` survives that re-mapping: captured from one solve's root
/// LP, it is re-projected onto the next solve's compressed LP (missing
/// seats are repaired by slack substitution, exactly like any other stale
/// basis hint — see [`sqpr_lp::BasisState`]).
#[derive(Debug, Clone)]
pub struct ModelBasis {
    /// Status per model variable at capture time.
    var_status: Vec<VarBasisStatus>,
    /// Status per model constraint's slack at capture time.
    cons_status: Vec<VarBasisStatus>,
    /// The basic seats.
    basic: Vec<BasisEntity>,
}

impl ModelBasis {
    /// Lifts an LP-space basis into model coordinates via the map used to
    /// lower the model.
    fn from_lp(basis: &BasisState, map: &LpMap, num_vars: usize, num_cons: usize) -> Self {
        let n = map.var_of_col.len();
        let mut var_status = vec![VarBasisStatus::AtLower; num_vars];
        for (col, &v) in map.var_of_col.iter().enumerate() {
            var_status[v] = basis.status[col];
        }
        // Dropped (constant) rows keep their slack basic: that is exactly
        // the seat they occupy when re-entering a later LP.
        let mut cons_status = vec![VarBasisStatus::Basic; num_cons];
        for (row, &c) in map.cons_of_row.iter().enumerate() {
            cons_status[c] = basis.status[n + row];
        }
        let basic = basis
            .basic
            .iter()
            .map(|&g| {
                if g < n {
                    BasisEntity::Var(map.var_of_col[g])
                } else {
                    BasisEntity::Cons(map.cons_of_row[g - n])
                }
            })
            .collect();
        ModelBasis {
            var_status,
            cons_status,
            basic,
        }
    }

    /// Re-expresses this basis against a *renumbered* model: `var_map` /
    /// `cons_map` give the new index of each old model variable /
    /// constraint (`None` for entities the new model dropped). Used by the
    /// planner's skeleton compaction, where the model is rebuilt from the
    /// surviving queries and every index shifts. Dropped seats disappear
    /// from the basic set and are repaired downstream by the usual slack
    /// substitution; unmapped statuses default to nonbasic-at-lower /
    /// slack-basic, the same defaults a fresh lowering assumes.
    pub fn remap(
        &self,
        var_map: &[Option<usize>],
        cons_map: &[Option<usize>],
        num_vars: usize,
        num_cons: usize,
    ) -> ModelBasis {
        let mut var_status = vec![VarBasisStatus::AtLower; num_vars];
        for (old, &st) in self.var_status.iter().enumerate() {
            if let Some(&Some(new)) = var_map.get(old) {
                var_status[new] = st;
            }
        }
        let mut cons_status = vec![VarBasisStatus::Basic; num_cons];
        for (old, &st) in self.cons_status.iter().enumerate() {
            if let Some(&Some(new)) = cons_map.get(old) {
                cons_status[new] = st;
            }
        }
        let basic = self
            .basic
            .iter()
            .filter_map(|&e| match e {
                BasisEntity::Var(v) => var_map.get(v).copied().flatten().map(BasisEntity::Var),
                BasisEntity::Cons(c) => cons_map.get(c).copied().flatten().map(BasisEntity::Cons),
            })
            .collect();
        ModelBasis {
            var_status,
            cons_status,
            basic,
        }
    }

    /// Projects this basis onto a (possibly different) compressed LP. The
    /// result has the LP's exact dimensions; seats whose entity is fixed
    /// out of the LP are dropped and repaired downstream.
    fn to_lp(&self, map: &LpMap, num_rows: usize) -> BasisState {
        let n = map.var_of_col.len();
        let mut status = Vec::with_capacity(n + num_rows);
        for &v in &map.var_of_col {
            status.push(
                self.var_status
                    .get(v)
                    .copied()
                    .unwrap_or(VarBasisStatus::AtLower),
            );
        }
        for &c in map.cons_of_row.iter() {
            status.push(
                self.cons_status
                    .get(c)
                    .copied()
                    .unwrap_or(VarBasisStatus::Basic),
            );
        }
        let max_cons = map.cons_of_row.iter().max().map_or(0, |&c| c + 1);
        let mut row_of_cons = vec![None; max_cons];
        for (row, &c) in map.cons_of_row.iter().enumerate() {
            row_of_cons[c] = Some(row);
        }
        let basic = self
            .basic
            .iter()
            .filter_map(|&e| match e {
                BasisEntity::Var(v) => map.col_of_var.get(v).copied().flatten(),
                BasisEntity::Cons(c) => row_of_cons.get(c).copied().flatten().map(|row| n + row),
            })
            .collect();
        BasisState {
            ncols: n,
            nrows: num_rows,
            basic,
            status,
        }
    }
}

/// Options for one branch & bound run.
#[derive(Debug, Clone)]
pub struct MilpOptions {
    /// Maximum number of branch & bound nodes (deterministic budget).
    /// 0 means a large default (1 million).
    pub max_nodes: usize,
    /// Optional wall-clock limit; checked between nodes.
    pub time_limit: Option<Duration>,
    /// Relative optimality gap at which the search stops early.
    pub gap_tol: f64,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Run the diving heuristic every this many nodes (0 disables).
    pub dive_every: usize,
    /// Run presolve bound propagation before the search (default on).
    pub presolve: bool,
    /// Reuse LP bases inside the tree: children warm-start from their
    /// parent's optimal basis and dives chain bases between fixings.
    /// Disabling reverts every node LP to a cold slack-identity start (the
    /// pre-warm-start behaviour, kept as the baseline/ablation).
    pub reuse_bases: bool,
    /// Prune any node whose bound does not beat the incumbent by **more
    /// than this margin** (minimisation space; default 0 = plain
    /// bound-vs-incumbent pruning). Callers that only care about
    /// improvements of at least a known size — SQPR's planner discards
    /// every non-admitting improvement, and one admission is worth at
    /// least `λ1 - ε` — can set the margin just below that size and turn
    /// "is there any improvement?" proofs into "is there a *big*
    /// improvement?" proofs, which prune far earlier. Solutions better
    /// than the incumbent by more than the margin are found exactly as
    /// without it; improvements within the margin may be skipped, and the
    /// reported `best_bound` is then only valid to within the margin.
    pub cutoff_margin: f64,
    /// Reuse basis factorisations *across* branch & bound constructions
    /// served from the same [`LpCacheSlot`]: the slot holds the matrix
    /// generation token, so cut rounds and consecutive submissions whose
    /// compressed LP only had its bounds patched re-attach the previous
    /// tree's final factorisation at the root instead of refactorising.
    /// Disabling claims a fresh generation per tree (the per-tree scope of
    /// the pre-lift behaviour, kept as the ablation); cacheless solves are
    /// always per-tree regardless.
    pub cross_solve_factors: bool,
    /// Worker threads for parallel node-LP evaluation: `0` resolves to
    /// `std::thread::available_parallelism()`, `1` runs the classic
    /// single-threaded loop with no pool. Every value produces
    /// byte-identical trees, incumbents, objectives and iteration counts —
    /// the pool only pre-computes node relaxations the sequential replay
    /// would solve anyway (see the module docs) — so this is purely a
    /// wall-clock knob and deliberately *not* part of any result-affecting
    /// configuration signature.
    pub threads: usize,
    /// LP subproblem options.
    pub lp: SimplexOptions,
}

impl Default for MilpOptions {
    fn default() -> Self {
        MilpOptions {
            max_nodes: 0,
            time_limit: None,
            gap_tol: 1e-6,
            int_tol: 1e-6,
            dive_every: 64,
            presolve: true,
            reuse_bases: true,
            cutoff_margin: 0.0,
            cross_solve_factors: true,
            threads: 0,
            lp: SimplexOptions::default(),
        }
    }
}

/// Termination status of a MILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MilpStatus {
    /// Incumbent proven optimal (tree exhausted or gap below tolerance).
    Optimal,
    /// Budget exhausted with a feasible incumbent in hand.
    Feasible,
    /// Proven infeasible.
    Infeasible,
    /// LP relaxation unbounded.
    Unbounded,
    /// Budget exhausted before any feasible point was found.
    Unknown,
}

/// Result of a MILP solve. `objective`/`best_bound` are reported in the
/// model's own sense (for maximisation, `best_bound >= objective`).
#[derive(Debug, Clone)]
pub struct MilpResult {
    pub status: MilpStatus,
    pub objective: f64,
    pub best_bound: f64,
    pub x: Option<Vec<f64>>,
    pub nodes: usize,
    pub lp_iterations: usize,
    /// LP iterations broken down by simplex phase (phase-I feasibility,
    /// primal phase-II, dual) across every relaxation solved in the tree.
    pub lp_pivots: PivotCounts,
    /// Relative gap `|objective - best_bound| / max(1, |objective|)`.
    pub gap: f64,
    /// Basis of the root LP relaxation in model coordinates, reusable as
    /// the `root_basis` of a [`MilpWarmStart`] for the next solve over a
    /// related (grown and/or differently-fixed) model.
    pub root_basis: Option<ModelBasis>,
}

impl MilpResult {
    pub fn has_solution(&self) -> bool {
        self.x.is_some()
    }
}

/// One chained bound tightening (child nodes point at their parents).
struct BoundChange {
    var: usize,
    lb: f64,
    ub: f64,
    parent: Option<Rc<BoundChange>>,
}

struct Node {
    /// Creation-order identity: node 0 is the root, children take ids in
    /// push order. The key under which speculative LP evaluations are
    /// memoized, and the final heap tie-break — making the pop order a
    /// *total* order, independent of `BinaryHeap` insertion history.
    id: u64,
    /// Valid lower bound (minimisation space) inherited from the parent LP.
    est: f64,
    depth: usize,
    chain: Option<Rc<BoundChange>>,
    /// Optimal basis of the parent's LP relaxation: the child differs only
    /// in one variable's bounds, so re-solving from here takes a handful of
    /// pivots instead of a cold phase-I. Shared (`Arc`) so sibling jobs on
    /// different workers read one copy concurrently.
    basis: Option<Arc<BasisState>>,
    /// The parent relaxation's final detached factorisation, installed
    /// into the evaluating workspace before this node's solve. Seeding
    /// every node from its *parent's* factors — rather than whatever the
    /// workspace happened to solve last — is what makes node evaluation a
    /// pure function of the node, and therefore safe to run speculatively
    /// on any worker.
    seed: Option<Arc<FactorState>>,
}

/// Max-heap wrapper turning `BinaryHeap` into best-first (smallest bound).
struct OrdNode(Node);

impl PartialEq for OrdNode {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for OrdNode {}
impl PartialOrd for OrdNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdNode {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: smaller est = higher priority. Tie-break on depth
        // (prefer deeper nodes: closer to integral), then on smaller id
        // (creation order) so the order is total: `BinaryHeap` is not
        // stable, and the parallel replay needs pops to be a pure function
        // of the heap's *contents*.
        other
            .0
            .est
            .partial_cmp(&self.0.est)
            .unwrap_or(Ordering::Equal)
            .then(self.0.depth.cmp(&other.0.depth))
            .then(other.0.id.cmp(&self.0.id))
    }
}

/// Cross-solve warm-start context: a known-feasible starting point (the
/// incumbent seed) and/or the root-LP basis of a previous solve over a
/// related model. Either part may be absent; both are validated/repaired
/// rather than trusted.
#[derive(Debug, Clone, Copy, Default)]
pub struct MilpWarmStart<'a> {
    /// Seed incumbent: bypasses branching if feasible (checked).
    pub start: Option<&'a [f64]>,
    /// Basis hint for the root LP relaxation, typically
    /// [`MilpResult::root_basis`] from the previous submission's solve
    /// (re-projected automatically if the model has since grown or changed
    /// its fixed set).
    pub root_basis: Option<&'a ModelBasis>,
}

/// Solves the model by branch & bound.
pub fn solve(model: &Model, opts: &MilpOptions) -> MilpResult {
    solve_with_start(model, opts, None)
}

/// Solves the model, optionally seeded with a known-feasible starting point
/// (used by SQPR to warm-start from the heuristic planner's plan).
pub fn solve_with_start(model: &Model, opts: &MilpOptions, start: Option<&[f64]>) -> MilpResult {
    solve_warm(
        model,
        opts,
        MilpWarmStart {
            start,
            root_basis: None,
        },
    )
}

/// Solves the model with the full warm-start context: incumbent seed plus
/// root-LP basis reuse.
pub fn solve_warm(model: &Model, opts: &MilpOptions, warm: MilpWarmStart<'_>) -> MilpResult {
    run_bnb(model, opts, warm, None, None)
}

/// [`solve_warm`] with a caller-held compressed-LP cache: the relaxation is
/// served from `cache` (patched/appended in place when the model's layout
/// is unchanged) instead of being re-lowered from scratch. See
/// [`LpCacheSlot`].
pub fn solve_warm_cached(
    model: &Model,
    opts: &MilpOptions,
    warm: MilpWarmStart<'_>,
    cache: &mut LpCacheSlot,
) -> MilpResult {
    run_bnb(model, opts, warm, None, Some(cache))
}

/// Like [`solve_with_start`], with an *incumbent filter*: integral solutions
/// the filter rejects are discarded instead of becoming incumbents. This is
/// the lazy-constraint hook — side conditions that are expensive to encode
/// as rows (e.g. SQPR's acyclicity) can be enforced on candidates only.
/// The start point, if given, bypasses the filter (the caller vouches).
pub fn solve_filtered(
    model: &Model,
    opts: &MilpOptions,
    start: Option<&[f64]>,
    filter: &dyn Fn(&[f64]) -> bool,
) -> MilpResult {
    solve_filtered_warm(
        model,
        opts,
        MilpWarmStart {
            start,
            root_basis: None,
        },
        filter,
    )
}

/// [`solve_filtered`] with the full warm-start context.
pub fn solve_filtered_warm(
    model: &Model,
    opts: &MilpOptions,
    warm: MilpWarmStart<'_>,
    filter: &dyn Fn(&[f64]) -> bool,
) -> MilpResult {
    run_bnb(model, opts, warm, Some(filter), None)
}

/// [`solve_filtered_warm`] with a caller-held compressed-LP cache; see
/// [`solve_warm_cached`].
pub fn solve_filtered_warm_cached(
    model: &Model,
    opts: &MilpOptions,
    warm: MilpWarmStart<'_>,
    filter: &dyn Fn(&[f64]) -> bool,
    cache: &mut LpCacheSlot,
) -> MilpResult {
    run_bnb(model, opts, warm, Some(filter), Some(cache))
}

/// Outcome of a preemptible solve slice: the search either ran to its
/// natural end (optimality/infeasibility proof or budget) or was suspended
/// at a node boundary into a resumable [`SearchState`].
// The `Done` variant carries `MilpResult` by value like every other solve
// entry point; suspension (already boxed) is the rare arm, so the size
// skew buys the common path a heap allocation saved.
#[allow(clippy::large_enum_variant)]
pub enum SolveOutcome {
    Done(MilpResult),
    Suspended(Box<SearchState>),
}

impl SolveOutcome {
    /// The finished result, if the slice completed the search.
    pub fn done(self) -> Option<MilpResult> {
        match self {
            SolveOutcome::Done(r) => Some(r),
            SolveOutcome::Suspended(_) => None,
        }
    }
}

/// Preemptible counterpart of the `solve_*` family: runs at most `quantum`
/// nodes, then suspends the search at the next node boundary into a
/// [`SearchState`] (resume with [`SearchState::resume`]). `quantum = 0`
/// suspends before the first node (the root is pushed but unevaluated);
/// `usize::MAX` never suspends. An uninterrupted run and *any* sequence of
/// suspend/resume cuts produce bit-identical trees, pivot counts and
/// objective bits at every [`MilpOptions::threads`] setting — see the
/// module docs.
///
/// A suspend leaves the caller's [`LpCacheSlot`] fully valid: the slot's
/// cached lowering, workspaces and factor token all survive, and later
/// submissions may be served from it while the suspended state is parked.
/// (The slot's detached factor cache is cleared — deterministically — so
/// the next tree's root seed never depends on where mid-tree evaluation
/// happened to run; that costs the next tree one root refactorisation,
/// nothing else.)
pub fn solve_preemptible(
    model: &Model,
    opts: &MilpOptions,
    warm: MilpWarmStart<'_>,
    filter: Option<IncumbentFilter<'_>>,
    cache: Option<&mut LpCacheSlot>,
    quantum: usize,
) -> SolveOutcome {
    run_preemptible(model, opts, warm, filter, cache, quantum)
}

/// Backs the classic (non-preemptible) entry points.
fn run_bnb(
    model: &Model,
    opts: &MilpOptions,
    warm: MilpWarmStart<'_>,
    filter: Option<IncumbentFilter<'_>>,
    cache: Option<&mut LpCacheSlot>,
) -> MilpResult {
    match run_preemptible(model, opts, warm, filter, cache, usize::MAX) {
        SolveOutcome::Done(r) => r,
        // sqpr::allow(hot-path-panic): a usize::MAX quantum cannot exhaust, so Suspended is impossible by construction; there is no caller to surface it to
        SolveOutcome::Suspended(_) => unreachable!("usize::MAX quantum never suspends"),
    }
}

/// Backs every entry point: resolves the LP relaxation and workspaces
/// (cached or fresh) on this stack frame, *outside* the search state — a
/// worker scope inside [`Bnb::drive`] borrows the LP and options while the
/// driver mutates the rest of the search, which an LP owned *by* the
/// search state would forbid. On suspension the relaxation geometry is
/// cloned into the returned [`SearchState`] (suspends are rare — one per
/// deadline-preempted round — so the clone is off the hot path).
fn run_preemptible(
    model: &Model,
    opts: &MilpOptions,
    warm: MilpWarmStart<'_>,
    filter: Option<IncumbentFilter<'_>>,
    cache: Option<&mut LpCacheSlot>,
    quantum: usize,
) -> SolveOutcome {
    match cache {
        Some(slot) => {
            let (lowered, ws, workers, factor_token) = slot.refresh_solver(model);
            if opts.cross_solve_factors {
                // The slot's token outlives this tree while the matrix
                // survives refreshes untouched: consecutive trees may
                // re-attach each other's factors at the root.
                ws.resume_factor_generation(factor_token);
            } else {
                ws.begin_factor_generation(next_factor_token());
            }
            let token = ws.factor_generation();
            let geom = SearchGeom::new(model, lowered.map.clone(), lowered.lp_integers.clone());
            let mut core = SearchCore::new(model, opts, warm, &lowered.lp, &geom);
            let store = WsStore { main: ws, workers };
            let verdict = Bnb {
                model,
                opts,
                filter,
                lp: &lowered.lp,
                geom: &geom,
                core: &mut core,
                ws: store,
                factor_token: token,
                // sqpr::allow(ambient-nondeterminism): opts.time_limit is an explicit caller SLO; expiry surfaces as a TimeLimit verdict, never a silently different plan
                deadline: opts.time_limit.map(|d| Instant::now() + d),
            }
            .drive(quantum);
            seal(verdict, model, opts, &lowered.lp, geom, core, token)
        }
        None => {
            let (lp, lp_integers, map) = model.to_lp_reduced();
            let mut ws = LpWorkspace::new();
            // A fresh lowering is this tree's private matrix: factor
            // reuse is scoped to its own node solves.
            let token = next_factor_token();
            ws.begin_factor_generation(token);
            let mut workers = Vec::new();
            let geom = SearchGeom::new(model, map, lp_integers);
            let mut core = SearchCore::new(model, opts, warm, &lp, &geom);
            let store = WsStore {
                main: &mut ws,
                workers: &mut workers,
            };
            let verdict = Bnb {
                model,
                opts,
                filter,
                lp: &lp,
                geom: &geom,
                core: &mut core,
                ws: store,
                factor_token: token,
                // sqpr::allow(ambient-nondeterminism): opts.time_limit is an explicit caller SLO; expiry surfaces as a TimeLimit verdict, never a silently different plan
                deadline: opts.time_limit.map(|d| Instant::now() + d),
            }
            .drive(quantum);
            seal(verdict, model, opts, &lp, geom, core, token)
        }
    }
}

/// Converts a finished slice into its [`MilpResult`], or packs a suspended
/// one into an owning [`SearchState`].
fn seal(
    verdict: SliceVerdict,
    model: &Model,
    opts: &MilpOptions,
    lp: &Problem,
    geom: SearchGeom,
    core: SearchCore,
    factor_token: u64,
) -> SolveOutcome {
    match verdict {
        SliceVerdict::Finished(status, bound) => {
            SolveOutcome::Done(core.result(model, status, bound))
        }
        SliceVerdict::Suspended => {
            // The suspended search gets private workspaces under the same
            // factor generation: every factorisation it still needs lives
            // in its node seeds (`Arc`s inside the heap/memo), and node
            // evaluation installs from the seed before each solve, so a
            // fresh workspace is semantically identical to the one the
            // slice ran in.
            let mut ws_main = LpWorkspace::new();
            ws_main.resume_factor_generation(factor_token);
            SolveOutcome::Suspended(Box::new(SearchState {
                model: model.clone(),
                opts: opts.clone(),
                lp: lp.clone(),
                geom,
                core,
                factor_token,
                ws_main,
                ws_workers: Vec::new(),
            }))
        }
    }
}

/// A branch & bound search suspended at a node boundary: the frontier
/// heap, incumbent, speculative-eval memo, node-id counter, root bounds
/// and factor-generation token, plus owned clones of the model, options
/// and compressed LP being searched — so the state outlives the planning
/// round (and the cache slot borrow) that spawned it. Resuming, in any
/// number of further slices at any [`MilpOptions::threads`] setting,
/// reproduces the uninterrupted run bit for bit: node evaluation is a
/// pure function of the node, the pop order is a total order over the
/// heap's contents, and both live entirely in this state.
///
/// Deliberately not `Send`: node bound-change chains are `Rc`-shared (the
/// chains never cross into the worker pool; a suspended search resumes on
/// whichever thread holds the state).
pub struct SearchState {
    model: Model,
    opts: MilpOptions,
    lp: Problem,
    geom: SearchGeom,
    core: SearchCore,
    factor_token: u64,
    ws_main: LpWorkspace,
    ws_workers: Vec<LpWorkspace>,
}

impl std::fmt::Debug for SearchState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchState")
            .field("nodes_done", &self.core.nodes_done)
            .field("open_nodes", &self.core.heap.len())
            .field("has_incumbent", &self.core.incumbent.is_some())
            .finish_non_exhaustive()
    }
}

impl SearchState {
    /// Continues the search for at most `quantum` further nodes. The
    /// filter is re-supplied per slice (it is a borrowed closure and
    /// cannot be parked); callers must pass a filter with the same
    /// accept/reject behaviour on every slice, or the resumed search may
    /// legitimately diverge from the uninterrupted one.
    pub fn resume(
        mut self: Box<Self>,
        filter: Option<IncumbentFilter<'_>>,
        quantum: usize,
    ) -> SolveOutcome {
        // sqpr::allow(ambient-nondeterminism): opts.time_limit is an explicit caller SLO; expiry surfaces as a TimeLimit verdict, never a silently different plan
        let deadline = self.opts.time_limit.map(|d| Instant::now() + d);
        let state = &mut *self;
        let store = WsStore {
            main: &mut state.ws_main,
            workers: &mut state.ws_workers,
        };
        let verdict = Bnb {
            model: &state.model,
            opts: &state.opts,
            filter,
            lp: &state.lp,
            geom: &state.geom,
            core: &mut state.core,
            ws: store,
            factor_token: state.factor_token,
            deadline,
        }
        .drive(quantum);
        match verdict {
            SliceVerdict::Finished(status, bound) => {
                let core = std::mem::take(&mut self.core);
                SolveOutcome::Done(core.result(&self.model, status, bound))
            }
            SliceVerdict::Suspended => SolveOutcome::Suspended(self),
        }
    }

    /// Nodes processed so far, across every slice.
    pub fn nodes_done(&self) -> usize {
        self.core.nodes_done
    }

    /// Open nodes on the frontier.
    pub fn open_nodes(&self) -> usize {
        self.core.heap.len()
    }

    /// Whether the suspended search holds a feasible incumbent.
    pub fn has_incumbent(&self) -> bool {
        self.core.incumbent.is_some()
    }

    /// Anytime snapshot of the suspended search as a [`MilpResult`]:
    /// status `Feasible` with the incumbent if one exists, `Unknown`
    /// otherwise; `best_bound` is the best open node's bound. The state
    /// itself is untouched — the search can still be resumed.
    pub fn incumbent_result(&self) -> MilpResult {
        let bound_min = self.core.heap.peek().map_or(f64::NEG_INFINITY, |n| n.0.est);
        let status = if self.core.incumbent.is_some() {
            MilpStatus::Feasible
        } else {
            MilpStatus::Unknown
        };
        self.core.result_ref(&self.model, status, bound_min)
    }
}

/// One slice's verdict, internal to the driver: [`SliceVerdict::Finished`]
/// carries the final status and best bound in minimisation space.
enum SliceVerdict {
    Finished(MilpStatus, f64),
    Suspended,
}

/// Read-only lowering geometry shared by every slice of one search:
/// the LP-to-model mapping plus the integer-variable index sets. Owned by
/// the [`SearchState`] when suspended, borrowed by the driver while a
/// slice runs.
struct SearchGeom {
    /// LP-to-model mapping for the compressed relaxation.
    map: LpMap,
    /// Integer variables in *model* space (branching, integrality).
    integers: Vec<usize>,
    /// Integer columns in *LP* space (diving heuristic).
    lp_integers: Vec<usize>,
}

impl SearchGeom {
    fn new(model: &Model, map: LpMap, lp_integers: Vec<usize>) -> Self {
        let integers: Vec<usize> = (0..model.num_vars())
            .filter(|&j| {
                model.var_type(crate::model::VarId::from_raw(j)) == crate::model::VarType::Integer
            })
            .collect();
        SearchGeom {
            map,
            integers,
            lp_integers,
        }
    }
}

/// The mutable search state proper — everything a suspend must carry for
/// the resumed search to replay bit-identically. Owned by [`SearchState`]
/// between slices, mutated through the [`Bnb`] driver during one.
#[derive(Default)]
struct SearchCore {
    /// Incumbent in minimisation space (model-space vector).
    incumbent: Option<(f64, Vec<f64>)>,
    nodes_done: usize,
    lp_iterations: usize,
    lp_pivots: PivotCounts,
    heap: BinaryHeap<OrdNode>,
    root_lb: Vec<f64>,
    root_ub: Vec<f64>,
    presolve_infeasible: bool,
    /// External basis hint for the root relaxation (already projected).
    root_hint: Option<Arc<BasisState>>,
    /// Next node id to assign (the root took 0).
    next_id: u64,
    /// Speculative LP evaluations by node id, filled by the worker pool
    /// and consumed — or discarded — by the sequential replay. Carried
    /// across a suspend: evaluation is pure, so consuming a parked memo
    /// entry after resume equals evaluating inline.
    evals: HashMap<u64, NodeEval>,
    /// Basis of the solved root relaxation (exported in the result).
    root_basis_out: Option<ModelBasis>,
    /// The root relaxation's final factorisation, re-installed into the
    /// main workspace when the tree ends: the next tree served from the
    /// same slot warm-starts its root from this root's basis, so this is
    /// the state whose basic set the re-attach check can actually match.
    root_factors: Option<Arc<FactorState>>,
    /// Node-materialisation scratch: model-space bounds…
    lb_buf: Vec<f64>,
    ub_buf: Vec<f64>,
    /// …and their LP-space projections.
    lp_lb_buf: Vec<f64>,
    lp_ub_buf: Vec<f64>,
    /// Root pushed (the first slice ran its prologue).
    started: bool,
    /// Loop-carried search verdicts (must survive a suspend: a node that
    /// survived pruning in an earlier slice keeps the tree non-infeasible).
    proven_infeasible_tree: bool,
    best_open_bound: f64,
}

/// The per-slice driver: borrows the invariants (model, options, LP,
/// geometry, workspaces) and mutates the [`SearchCore`]. Short-lived — one
/// `Bnb` exists per slice and is dropped at the slice boundary.
struct Bnb<'a> {
    model: &'a Model,
    opts: &'a MilpOptions,
    filter: Option<IncumbentFilter<'a>>,
    /// Compressed LP relaxation (bound-fixed variables folded out). A
    /// plain shared reference — worker threads borrow it concurrently
    /// while the driver mutates the rest of the search state.
    lp: &'a Problem,
    geom: &'a SearchGeom,
    core: &'a mut SearchCore,
    /// Reusable LP scratch: the main workspace shared by every *replayed*
    /// relaxation (node re-solves and diving heuristics alike) plus the
    /// worker pool's private workspaces; borrowed from the [`LpCacheSlot`]
    /// on the cached path so allocations and basis factors survive
    /// between consecutive trees, and from the suspended [`SearchState`]
    /// on the resume path.
    ws: WsStore<'a>,
    /// Matrix generation every factor state in this tree is scoped to.
    factor_token: u64,
    /// Wall-clock cutoff, re-armed per slice from `opts.time_limit` (the
    /// deterministic budgets are `max_nodes` and the quantum; the clock
    /// limit is best-effort per slice by design).
    deadline: Option<Instant>,
}

impl SearchCore {
    fn new(
        model: &Model,
        opts: &MilpOptions,
        warm: MilpWarmStart<'_>,
        lp: &Problem,
        geom: &SearchGeom,
    ) -> Self {
        let start = warm.start;
        let map = &geom.map;
        let mut root_lb = Vec::with_capacity(model.num_vars());
        let mut root_ub = Vec::with_capacity(model.num_vars());
        for j in 0..model.num_vars() {
            let (l, u) = model.var_bounds(crate::model::VarId::from_raw(j));
            root_lb.push(l);
            root_ub.push(u);
        }
        let mut presolve_infeasible = map.infeasible_fixed_row;
        if opts.presolve {
            // The lowering already classified rows: `cons_of_row` is
            // exactly the set with at least one unfixed variable, and the
            // constant rows' feasibility verdict is `infeasible_fixed_row`
            // above — no second O(model) scan needed.
            match presolve_bounds_active(model, 6, &map.cons_of_row) {
                Presolved::Bounds(plb, pub_) => {
                    root_lb = plb;
                    root_ub = pub_;
                }
                Presolved::Infeasible => presolve_infeasible = true,
            }
        }
        let flip = if model.sense == Sense::Maximize {
            -1.0
        } else {
            1.0
        };
        let incumbent = start.and_then(|x| {
            if model.is_feasible(x, opts.int_tol.max(1e-7)) {
                Some((flip * model.objective_value(x), x.to_vec()))
            } else {
                None
            }
        });
        let root_hint = warm
            .root_basis
            .map(|mb| Arc::new(mb.to_lp(map, lp.nrows())));
        let n = model.num_vars();
        let ncols = lp.ncols();
        SearchCore {
            incumbent,
            nodes_done: 0,
            lp_iterations: 0,
            lp_pivots: PivotCounts::default(),
            heap: BinaryHeap::new(),
            root_lb,
            root_ub,
            presolve_infeasible,
            root_hint,
            next_id: 0,
            evals: HashMap::new(),
            root_basis_out: None,
            root_factors: None,
            lb_buf: vec![0.0; n],
            ub_buf: vec![0.0; n],
            lp_lb_buf: vec![0.0; ncols],
            lp_ub_buf: vec![0.0; ncols],
            started: false,
            proven_infeasible_tree: true, // until a node survives
            best_open_bound: f64::NEG_INFINITY,
        }
    }

    /// Builds the final [`MilpResult`] from a finished search (consuming —
    /// the incumbent vector and exported root basis move out).
    fn result(mut self, model: &Model, status: MilpStatus, bound_min: f64) -> MilpResult {
        let flip = if model.sense == Sense::Maximize {
            -1.0
        } else {
            1.0
        };
        let (objective, x) = match self.incumbent.take() {
            Some((obj, x)) => (flip * obj, Some(x)),
            None => (f64::NAN, None),
        };
        let gap = match &x {
            Some(_) if bound_min.is_finite() => {
                (flip * objective - bound_min).abs() / objective.abs().max(1.0)
            }
            _ => f64::INFINITY,
        };
        MilpResult {
            status,
            objective,
            best_bound: flip * bound_min,
            x,
            nodes: self.nodes_done,
            lp_iterations: self.lp_iterations,
            lp_pivots: self.lp_pivots,
            gap,
            root_basis: self.root_basis_out.take(),
        }
    }

    /// Non-consuming [`Self::result`] (anytime snapshots of a suspended
    /// search clone the incumbent and root basis).
    fn result_ref(&self, model: &Model, status: MilpStatus, bound_min: f64) -> MilpResult {
        let flip = if model.sense == Sense::Maximize {
            -1.0
        } else {
            1.0
        };
        let (objective, x) = match &self.incumbent {
            Some((obj, x)) => (flip * obj, Some(x.clone())),
            None => (f64::NAN, None),
        };
        let gap = match &self.incumbent {
            Some((obj, _)) if bound_min.is_finite() => (obj - bound_min).abs() / obj.abs().max(1.0),
            _ => f64::INFINITY,
        };
        MilpResult {
            status,
            objective,
            best_bound: flip * bound_min,
            x,
            nodes: self.nodes_done,
            lp_iterations: self.lp_iterations,
            lp_pivots: self.lp_pivots,
            gap,
            root_basis: self.root_basis_out.clone(),
        }
    }
}

impl<'a> Bnb<'a> {
    /// Expands a compressed-LP solution vector into model space, filling
    /// fixed variables from the materialised node bounds.
    fn expand_x(&self, x_lp: &[f64]) -> Vec<f64> {
        let mut full = self.core.lb_buf.clone();
        for (col, &v) in self.geom.map.var_of_col.iter().enumerate() {
            full[v] = x_lp[col];
        }
        full
    }

    fn flip(&self) -> f64 {
        if self.model.sense == Sense::Maximize {
            -1.0
        } else {
            1.0
        }
    }

    /// Materialises a node's model- and LP-space bounds into the scratch
    /// buffers (root bounds intersected with the node's bound-change
    /// chain).
    fn materialize_node(&mut self, chain: &Option<Rc<BoundChange>>) {
        let core = &mut *self.core;
        core.lb_buf.copy_from_slice(&core.root_lb);
        core.ub_buf.copy_from_slice(&core.root_ub);
        let mut cur = chain.as_ref();
        while let Some(c) = cur {
            // Intersection keeps correctness regardless of chain order.
            if c.lb > core.lb_buf[c.var] {
                core.lb_buf[c.var] = c.lb;
            }
            if c.ub < core.ub_buf[c.var] {
                core.ub_buf[c.var] = c.ub;
            }
            cur = c.parent.as_ref();
        }
        for (col, &v) in self.geom.map.var_of_col.iter().enumerate() {
            core.lp_lb_buf[col] = core.lb_buf[v];
            core.lp_ub_buf[col] = core.ub_buf[v];
        }
    }

    /// Detaches everything a worker needs to evaluate `node`'s relaxation:
    /// bounds are materialised eagerly (the `Rc` bound-change chain never
    /// crosses threads), basis hint and factor seed are shared read-only.
    fn make_job(&mut self, node: &Node) -> Job {
        self.materialize_node(&node.chain);
        Job {
            id: node.id,
            lp_lb: self.core.lp_lb_buf.clone(),
            lp_ub: self.core.lp_ub_buf.clone(),
            hint: if self.opts.reuse_bases {
                node.basis.clone()
            } else {
                None
            },
            seed: node.seed.clone(),
        }
    }

    /// Picks the integer variable to branch on: most fractional value,
    /// ties broken by larger |objective| then smaller index. Works in LP
    /// space (model-fixed integers cannot branch; `to_lp_reduced` already
    /// rejected fractional fixings), returning the *model* variable index
    /// for the bound-change chain.
    fn pick_branching(&self, x_lp: &[f64]) -> Option<(usize, f64)> {
        let (lb, ub) = (&self.core.lb_buf, &self.core.ub_buf);
        let mut best: Option<(usize, f64, f64)> = None;
        for &col in &self.geom.lp_integers {
            let j = self.geom.map.var_of_col[col];
            if lb[j] >= ub[j] {
                continue; // fixed at this node
            }
            let v = x_lp[col];
            let frac = v - v.floor();
            let dist = frac.min(1.0 - frac);
            if dist <= self.opts.int_tol {
                continue;
            }
            let obj = self.model.objective_coeff(crate::model::VarId::from_raw(j));
            let score = dist * (1.0 + obj.abs());
            if best.is_none_or(|(_, _, s)| score > s) {
                best = Some((j, v, score));
            }
        }
        best.map(|(j, v, _)| (j, v))
    }

    /// Integrality of an LP-space point (model-fixed integers are integral
    /// by the `to_lp_reduced` contract).
    fn is_integral(&self, x_lp: &[f64]) -> bool {
        self.geom
            .lp_integers
            .iter()
            .all(|&col| (x_lp[col] - x_lp[col].round()).abs() <= self.opts.int_tol)
    }

    /// Considers a candidate incumbent (minimisation objective).
    fn offer_incumbent(&mut self, obj: f64, x: Vec<f64>) {
        // Snap integers exactly before validating against the model.
        let mut snapped = x;
        for &j in &self.geom.integers {
            snapped[j] = snapped[j].round();
        }
        let model_x_ok = self.model.is_feasible(&snapped, 1e-5);
        if !model_x_ok {
            return;
        }
        if let Some(filter) = self.filter {
            if !filter(&snapped) {
                return;
            }
        }
        let true_obj = self.flip() * self.model.objective_value(&snapped);
        if self
            .core
            .incumbent
            .as_ref()
            .is_none_or(|(best, _)| true_obj < *best - 1e-12)
        {
            let _ = obj;
            self.core.incumbent = Some((true_obj, snapped));
        }
    }

    fn out_of_budget(&self) -> bool {
        let max_nodes = if self.opts.max_nodes == 0 {
            1_000_000
        } else {
            self.opts.max_nodes
        };
        if self.core.nodes_done >= max_nodes {
            return true;
        }
        if let Some(d) = self.deadline {
            // sqpr::allow(ambient-nondeterminism): time-limit check on the B&B driver; expiry stops the search with a TimeLimit verdict, it never reorders it
            if Instant::now() >= d {
                return true;
            }
        }
        false
    }

    /// Runs one slice of at most `quantum` nodes (`usize::MAX` = to
    /// completion). The first slice runs the prologue (presolve verdict,
    /// root push); every slice spins up — and winds down — its own worker
    /// scope, which is unobservable in the search's outputs because the
    /// pool only pre-computes results the replay would compute anyway.
    fn drive(mut self, quantum: usize) -> SliceVerdict {
        if !self.core.started {
            self.core.started = true;
            if self.core.presolve_infeasible && self.core.incumbent.is_none() {
                // A warm start contradicting presolve would indicate a bug
                // in propagation; the model validator already vetted it, so
                // treat presolve as authoritative only when no start
                // exists.
                return SliceVerdict::Finished(MilpStatus::Infeasible, f64::INFINITY);
            }

            // Root node, warm-started from the previous solve's basis if
            // given, seeded with the workspace's surviving factor state
            // (the previous tree's root factorisation on the cross-solve
            // cached path; `None` on fresh workspaces or after a token
            // renewal).
            let root_seed = self.ws.main.take_factor_state().map(Arc::new);
            let root_hint = self.core.root_hint.clone();
            self.core.heap.push(OrdNode(Node {
                id: 0,
                est: f64::NEG_INFINITY,
                depth: 0,
                chain: None,
                basis: root_hint,
                seed: root_seed,
            }));
            self.core.next_id = 1;
        }

        let threads = effective_threads(self.opts.threads);
        let verdict = if threads > 1 {
            // Copy the shared references out of `self` so the worker scope
            // can hold them while `search` mutates the search state.
            let lp = self.lp;
            let opts = self.opts;
            let token = self.factor_token;
            let spare = std::mem::take(&mut *self.ws.workers);
            let mut returned = Vec::new();
            let out = std::thread::scope(|scope| {
                let mut pool = WorkerPool::new(scope, threads, lp, &opts.lp, token, spare);
                let out = self.search(Some(&mut pool), quantum);
                returned = pool.shutdown();
                out
            });
            *self.ws.workers = returned;
            out
        } else {
            self.search(None, quantum)
        };

        match verdict {
            SliceVerdict::Finished(..) => {
                // Leave the *root's* final factorisation in the main
                // workspace: the next tree served from the same slot
                // warm-starts its root from this root's exported basis, so
                // this is the state whose basic set the re-attach check can
                // match. (Under lineage seeding the workspace would
                // otherwise end the tree empty — every node evaluation
                // takes its state out.)
                if let Some(f) = self.core.root_factors.take() {
                    let state = Arc::try_unwrap(f).unwrap_or_else(|a| (*a).clone());
                    self.ws
                        .main
                        .install_factor_state(self.factor_token, Some(state));
                }
            }
            SliceVerdict::Suspended => {
                // Mid-tree the workspace's detached cache holds whatever
                // the last inline evaluation (or dive) left behind — which
                // *does* depend on the thread count, since memoized nodes
                // never touch the main workspace. Clear it so the state the
                // slice leaves behind (in the cache slot or the suspended
                // search) is deterministic; node evaluation re-installs
                // from each node's seed anyway.
                self.ws.main.take_factor_state();
            }
        }
        verdict
    }

    /// The sequential replay: pops, prunes, branches and accepts
    /// incumbents one node at a time — the *entire* search semantics live
    /// here, identical at every thread count. The pool (when present) only
    /// pre-computes node evaluations into the core's memo. Suspension
    /// happens strictly *between* nodes (before a pop), so a cut changes
    /// no intermediate value the replay would compute.
    fn search(
        &mut self,
        mut pool: Option<&mut WorkerPool<'_, '_>>,
        quantum: usize,
    ) -> SliceVerdict {
        let mut budget_hit = false;
        let mut slice_done = 0usize;
        // Effective bound-vs-incumbent slack: the noise-floor epsilon for
        // the active ratio test, widened by the caller's cutoff margin.
        let prune_slack = if self.opts.lp.ratio_test == sqpr_lp::RatioTest::Classic {
            PRUNE_EPS_EXACT
        } else {
            PRUNE_EPS_HARRIS
        } + self.opts.cutoff_margin;

        loop {
            // Preemption point: the quantum counts nodes *evaluated this
            // slice*; everything else (global budgets, pruning, the status
            // computation below) runs on resume exactly as it would have
            // uninterrupted.
            if slice_done >= quantum && !self.core.heap.is_empty() {
                return SliceVerdict::Suspended;
            }
            if let Some(p) = pool.as_deref_mut() {
                self.speculate(p, prune_slack);
            }
            let Some(OrdNode(node)) = self.core.heap.pop() else {
                break;
            };
            // Global pruning: with best-first search, once the best open
            // node cannot beat the incumbent, the incumbent is optimal.
            if let Some((inc, _)) = &self.core.incumbent {
                if node.est >= inc - prune_slack {
                    self.core.proven_infeasible_tree = false;
                    self.core.best_open_bound = *inc;
                    // All other open nodes are at least as bad.
                    self.core.heap.clear();
                    self.core.evals.clear();
                    break;
                }
                let gap = (inc - node.est).abs() / inc.abs().max(1.0);
                if gap <= self.opts.gap_tol {
                    self.core.proven_infeasible_tree = false;
                    self.core.best_open_bound = node.est;
                    self.core.heap.clear();
                    self.core.evals.clear();
                    break;
                }
            }
            if self.out_of_budget() {
                budget_hit = true;
                self.core.best_open_bound = node.est;
                self.core.proven_infeasible_tree = false;
                break;
            }
            self.core.nodes_done += 1;
            slice_done += 1;

            self.materialize_node(&node.chain);
            // Consume the speculative evaluation if one landed, evaluate
            // inline otherwise — the result is the same either way (node
            // evaluation is pure), so thread count and pool timing leave
            // no trace in anything downstream of here.
            let NodeEval { sol, factors } = match self.core.evals.remove(&node.id) {
                Some(eval) => eval,
                None => {
                    let hint = if self.opts.reuse_bases {
                        node.basis.as_deref()
                    } else {
                        None
                    };
                    evaluate_node_lp(
                        self.lp,
                        &self.core.lp_lb_buf,
                        &self.core.lp_ub_buf,
                        hint,
                        &self.opts.lp,
                        self.factor_token,
                        node.seed.as_deref(),
                        &mut *self.ws.main,
                    )
                }
            };
            self.core.lp_iterations += sol.iterations;
            self.core.lp_pivots.merge(&sol.pivots);
            if node.depth == 0 {
                if self.core.root_basis_out.is_none() {
                    self.core.root_basis_out = sol.basis.as_ref().map(|b| {
                        ModelBasis::from_lp(
                            b,
                            &self.geom.map,
                            self.model.num_vars(),
                            self.model.num_cons(),
                        )
                    });
                }
                self.core.root_factors = factors.clone();
            }

            match sol.status {
                LpStatus::Infeasible => continue,
                LpStatus::Unbounded => {
                    if node.depth == 0 {
                        return SliceVerdict::Finished(MilpStatus::Unbounded, f64::NEG_INFINITY);
                    }
                    continue; // child unbounded implies root unbounded; defensive
                }
                LpStatus::Optimal | LpStatus::IterationLimit => {}
            }
            self.core.proven_infeasible_tree = false;

            // A non-optimal LP termination gives no trustworthy bound;
            // inherit the parent's. Add back the folded fixed-variable
            // objective to recover model-space bounds.
            let node_bound = if sol.status == LpStatus::Optimal {
                sol.objective + self.geom.map.fixed_obj_min
            } else {
                node.est
            };
            if let Some((inc, _)) = &self.core.incumbent {
                if node_bound >= inc - prune_slack {
                    continue;
                }
            }

            if sol.status == LpStatus::Optimal && self.is_integral(&sol.x) {
                let x_full = self.expand_x(&sol.x);
                self.offer_incumbent(node_bound, x_full);
                continue;
            }

            // Primal heuristics from this relaxation point.
            if self.core.nodes_done == 1
                || (self.opts.dive_every > 0
                    && self.core.nodes_done.is_multiple_of(self.opts.dive_every))
            {
                // Chain the dive from this node's final factorisation —
                // the same state at any thread count, wherever the node's
                // LP was actually evaluated.
                self.ws
                    .main
                    .install_factor_state(self.factor_token, factors.as_deref().cloned());
                if let Some((obj, x_lp)) = heuristics::dive(
                    self.lp,
                    &self.geom.lp_integers,
                    &self.core.lp_lb_buf,
                    &self.core.lp_ub_buf,
                    &sol.x,
                    sol.basis.as_ref().filter(|_| self.opts.reuse_bases),
                    &self.opts.lp,
                    self.opts.int_tol,
                    &mut self.core.lp_iterations,
                    &mut self.core.lp_pivots,
                    &mut *self.ws.main,
                ) {
                    let dived = self.expand_x(&x_lp);
                    self.offer_incumbent(obj + self.geom.map.fixed_obj_min, dived);
                }
            }

            // Branch.
            let Some((var, value)) = self.pick_branching(&sol.x) else {
                // Numerically integral but is_integral said no (tolerance
                // edge): offer as incumbent and move on.
                if sol.status == LpStatus::Optimal {
                    let x_full = self.expand_x(&sol.x);
                    self.offer_incumbent(node_bound, x_full);
                }
                continue;
            };
            // Both children start from this node's optimal basis (they
            // differ from it by one bound, so the re-solve is a short
            // feasibility walk instead of a cold start) and inherit its
            // final factorisation as their seed. Ids are assigned in push
            // order: deterministic, since pushes happen only here on the
            // replay thread.
            let child_basis = sol.basis.map(Arc::new);
            let floor = value.floor();
            let (node_lb, node_ub) = (self.core.lb_buf[var], self.core.ub_buf[var]);
            let down = Rc::new(BoundChange {
                var,
                lb: node_lb,
                ub: floor,
                parent: node.chain.clone(),
            });
            let up = Rc::new(BoundChange {
                var,
                lb: floor + 1.0,
                ub: node_ub,
                parent: node.chain.clone(),
            });
            if floor >= node_lb - 1e-9 {
                let id = self.core.next_id;
                self.core.next_id += 1;
                self.core.heap.push(OrdNode(Node {
                    id,
                    est: node_bound,
                    depth: node.depth + 1,
                    chain: Some(down),
                    basis: child_basis.clone(),
                    seed: factors.clone(),
                }));
            }
            if floor + 1.0 <= node_ub + 1e-9 {
                let id = self.core.next_id;
                self.core.next_id += 1;
                self.core.heap.push(OrdNode(Node {
                    id,
                    est: node_bound,
                    depth: node.depth + 1,
                    chain: Some(up),
                    basis: child_basis,
                    seed: factors,
                }));
            }
        }

        // Determine final status.
        let status = if budget_hit {
            if self.core.incumbent.is_some() {
                MilpStatus::Feasible
            } else {
                MilpStatus::Unknown
            }
        } else if self.core.incumbent.is_some() {
            MilpStatus::Optimal
        } else if self.core.proven_infeasible_tree || self.core.heap.is_empty() {
            MilpStatus::Infeasible
        } else {
            MilpStatus::Unknown
        };
        let bound = if status == MilpStatus::Optimal {
            self.core.incumbent.as_ref().map(|(o, _)| *o).unwrap_or(0.0)
        } else {
            // Best open bound seen when we stopped.
            self.core.best_open_bound
        };
        SliceVerdict::Finished(status, bound)
    }

    /// Pre-computes LP evaluations for the top of the frontier on the
    /// worker pool. Pure speculation: every job is a node the replay may
    /// pop next, and evaluation is a pure function of the node, so running
    /// it early — or not at all — is unobservable in the search's outputs.
    fn speculate(&mut self, pool: &mut WorkerPool<'_, '_>, prune_slack: f64) {
        if self.core.heap.len() < 2 || self.out_of_budget() {
            return;
        }
        // Don't pay thread startup for tiny trees.
        if !pool.spawned && self.core.nodes_done < POOL_SPAWN_NODES {
            return;
        }
        if let Some((inc, _)) = &self.core.incumbent {
            if let Some(top) = self.core.heap.peek() {
                // The replay ends (optimality proven) as soon as the best
                // open node cannot beat the incumbent — nothing left to
                // speculate on then.
                if top.0.est >= inc - prune_slack
                    || (inc - top.0.est).abs() / inc.abs().max(1.0) <= self.opts.gap_tol
                {
                    return;
                }
            }
        }
        // Nothing to wait for while the next pop is already memoized.
        if self
            .core
            .heap
            .peek()
            .is_some_and(|n| self.core.evals.contains_key(&n.0.id))
        {
            return;
        }
        // Pop the frontier's top `threads` nodes; evaluate the unevaluated
        // survivors, then push everything straight back.
        let mut popped = Vec::with_capacity(pool.threads);
        let mut jobs = Vec::new();
        while popped.len() < pool.threads {
            let Some(OrdNode(node)) = self.core.heap.pop() else {
                break;
            };
            let known = self.core.evals.contains_key(&node.id);
            // A node the incumbent already prunes ends the replay when it
            // pops; nodes behind it in the order never run.
            let prunable = self
                .core
                .incumbent
                .as_ref()
                .is_some_and(|(inc, _)| node.est >= inc - prune_slack);
            if !known && !prunable {
                jobs.push(self.make_job(&node));
            }
            popped.push(OrdNode(node));
            if prunable {
                break;
            }
        }
        for n in popped {
            self.core.heap.push(n);
        }
        if jobs.len() < 2 {
            // A lone evaluation is cheaper inline than through the pool.
            return;
        }
        for (id, eval) in pool.evaluate(jobs) {
            self.core.evals.insert(id, eval);
        }
    }
}

/// Resolves [`MilpOptions::threads`]: 0 = one worker per available core.
fn effective_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
}

/// One unit of speculative work: everything a worker needs to evaluate a
/// node's LP relaxation, detached from the search state (bounds are
/// materialised up front, so the `Rc` bound-change chain never crosses a
/// thread; the basis hint and factor seed are shared read-only).
struct Job {
    id: u64,
    lp_lb: Vec<f64>,
    lp_ub: Vec<f64>,
    hint: Option<Arc<BasisState>>,
    seed: Option<Arc<FactorState>>,
}

/// A node relaxation's outcome: the LP solution plus the evaluating
/// workspace's final detached factorisation (the children's seed).
struct NodeEval {
    sol: LpSolution,
    factors: Option<Arc<FactorState>>,
}

/// Evaluates one node LP in `ws`. Pure: the simplex entry point fully
/// resets the workspace's numeric state per solve, and the only
/// cross-solve carry-over — the detached factor cache — is explicitly
/// installed from the node's seed first and detached into the result
/// after, so the outcome depends only on the arguments, never on which
/// solve (or which thread) the workspace served last.
#[allow(clippy::too_many_arguments)]
fn evaluate_node_lp(
    lp: &Problem,
    lp_lb: &[f64],
    lp_ub: &[f64],
    hint: Option<&BasisState>,
    lp_opts: &SimplexOptions,
    token: u64,
    seed: Option<&FactorState>,
    ws: &mut LpWorkspace,
) -> NodeEval {
    ws.install_factor_state(token, seed.cloned());
    let sol = solve_with_bounds_recovering_ws(lp, lp_lb, lp_ub, hint, lp_opts, ws);
    let factors = ws.take_factor_state().map(Arc::new);
    NodeEval { sol, factors }
}

/// Scoped worker pool for speculative node evaluation. Spawned lazily on
/// the first batch; workers pull [`Job`]s off one shared queue and push
/// results back, each owning a private [`LpWorkspace`] for its lifetime
/// (handed back through [`Self::shutdown`] so the allocations survive into
/// the next tree via the [`WsStore`]).
struct WorkerPool<'scope, 'env> {
    scope: &'scope std::thread::Scope<'scope, 'env>,
    threads: usize,
    lp: &'env Problem,
    lp_opts: &'env SimplexOptions,
    token: u64,
    /// Workspaces not yet handed to a worker.
    spare: Vec<LpWorkspace>,
    spawned: bool,
    job_tx: Option<mpsc::Sender<Job>>,
    res_rx: Option<mpsc::Receiver<(u64, NodeEval)>>,
    ws_rx: Option<mpsc::Receiver<LpWorkspace>>,
}

impl<'scope, 'env> WorkerPool<'scope, 'env> {
    fn new(
        scope: &'scope std::thread::Scope<'scope, 'env>,
        threads: usize,
        lp: &'env Problem,
        lp_opts: &'env SimplexOptions,
        token: u64,
        spare: Vec<LpWorkspace>,
    ) -> Self {
        WorkerPool {
            scope,
            threads,
            lp,
            lp_opts,
            token,
            spare,
            spawned: false,
            job_tx: None,
            res_rx: None,
            ws_rx: None,
        }
    }

    fn spawn(&mut self) {
        self.spawned = true;
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        // One shared queue: `mpsc::Receiver` is not `Sync`, so workers
        // serialise on a mutex around `recv`. Contention covers the
        // dequeue only, never an LP solve.
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (res_tx, res_rx) = mpsc::channel();
        let (ws_tx, ws_rx) = mpsc::channel();
        for _ in 0..self.threads {
            let mut ws = self.spare.pop().unwrap_or_default();
            let job_rx = Arc::clone(&job_rx);
            let res_tx = res_tx.clone();
            let ws_tx = ws_tx.clone();
            let (lp, lp_opts, token) = (self.lp, self.lp_opts, self.token);
            self.scope.spawn(move || {
                loop {
                    // The match scrutinee holds the lock for the dequeue
                    // only; it is released before the solve starts.
                    let job = match job_rx.lock() {
                        Ok(rx) => rx.recv(),
                        Err(_) => break,
                    };
                    let Ok(job) = job else { break };
                    let eval = evaluate_node_lp(
                        lp,
                        &job.lp_lb,
                        &job.lp_ub,
                        job.hint.as_deref(),
                        lp_opts,
                        token,
                        job.seed.as_deref(),
                        &mut ws,
                    );
                    if res_tx.send((job.id, eval)).is_err() {
                        break;
                    }
                }
                let _ = ws_tx.send(ws);
            });
        }
        self.job_tx = Some(job_tx);
        self.res_rx = Some(res_rx);
        self.ws_rx = Some(ws_rx);
    }

    /// Runs a batch to completion and returns every result (in arrival
    /// order; the caller memoizes by node id, so order is irrelevant).
    fn evaluate(&mut self, jobs: Vec<Job>) -> Vec<(u64, NodeEval)> {
        if !self.spawned {
            self.spawn();
        }
        let n = jobs.len();
        // sqpr::allow(hot-path-panic): channel endpoints exist right after spawn(); a disconnect means a worker thread already panicked, which has no recoverable planning answer
        let tx = self.job_tx.as_ref().expect("pool spawned");
        for job in jobs {
            // sqpr::allow(hot-path-panic): send fails only after a worker panic; propagating that panic is strictly better than deadlocking on lost results
            tx.send(job).expect("worker pool hung up");
        }
        // sqpr::allow(hot-path-panic): channel endpoints exist right after spawn(); a disconnect means a worker thread already panicked, which has no recoverable planning answer
        let rx = self.res_rx.as_ref().expect("pool spawned");
        // sqpr::allow(hot-path-panic): recv fails only after a worker panic; propagating that panic is strictly better than deadlocking on lost results
        (0..n).map(|_| rx.recv().expect("worker died")).collect()
    }

    /// Closes the job queue (ending the worker loops; the enclosing
    /// `thread::scope` joins them) and collects every workspace back.
    fn shutdown(mut self) -> Vec<LpWorkspace> {
        let mut out = std::mem::take(&mut self.spare);
        self.job_tx.take();
        if let Some(ws_rx) = self.ws_rx.take() {
            out.extend(ws_rx.iter());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VarType;

    fn default_opts() -> MilpOptions {
        MilpOptions::default()
    }

    #[test]
    fn pure_lp_passthrough() {
        // No integer variables: one LP solve.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous(0.0, 4.0, 1.0);
        let y = m.add_continuous(0.0, 4.0, 1.0);
        m.add_le(vec![(x, 1.0), (y, 1.0)], 5.0);
        let r = solve(&m, &default_opts());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective - 5.0).abs() < 1e-6);
    }

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c st 3a + 4b + 2c <= 5, binary. Best: a+c = 17.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary(10.0);
        let b = m.add_binary(13.0);
        let c = m.add_binary(7.0);
        m.add_le(vec![(a, 3.0), (b, 4.0), (c, 2.0)], 5.0);
        let r = solve(&m, &default_opts());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective - 17.0).abs() < 1e-6, "{}", r.objective);
        let x = r.x.unwrap();
        assert_eq!(
            x.iter().map(|v| v.round() as i32).collect::<Vec<_>>(),
            vec![1, 0, 1]
        );
    }

    #[test]
    fn integer_rounding_not_optimal() {
        // Classic example where LP rounding fails:
        // max x + y st 2x + 2y <= 3, x,y binary => optimum 1 (not 1.5 rounded).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary(1.0);
        let y = m.add_binary(1.0);
        m.add_le(vec![(x, 2.0), (y, 2.0)], 3.0);
        let r = solve(&m, &default_opts());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_milp() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary(1.0);
        let y = m.add_binary(1.0);
        m.add_ge(vec![(x, 1.0), (y, 1.0)], 3.0);
        let r = solve(&m, &default_opts());
        assert_eq!(r.status, MilpStatus::Infeasible);
        assert!(r.x.is_none());
    }

    #[test]
    fn general_integers() {
        // min 2x + 3y st x + y >= 7.5, x,y integer in [0, 10] => 16 at (7.5->
        // e.g. x=8 y=0 cost 16; check alternatives: x=7,y=1 => 17).
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(VarType::Integer, 0.0, 10.0, 2.0);
        let y = m.add_var(VarType::Integer, 0.0, 10.0, 3.0);
        m.add_ge(vec![(x, 1.0), (y, 1.0)], 7.5);
        let r = solve(&m, &default_opts());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective - 16.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constrained_assignment() {
        // 2x2 assignment: min cost matrix [[1, 10], [10, 1]]; optimum 2.
        let mut m = Model::new(Sense::Minimize);
        let x00 = m.add_binary(1.0);
        let x01 = m.add_binary(10.0);
        let x10 = m.add_binary(10.0);
        let x11 = m.add_binary(1.0);
        m.add_eq(vec![(x00, 1.0), (x01, 1.0)], 1.0);
        m.add_eq(vec![(x10, 1.0), (x11, 1.0)], 1.0);
        m.add_eq(vec![(x00, 1.0), (x10, 1.0)], 1.0);
        m.add_eq(vec![(x01, 1.0), (x11, 1.0)], 1.0);
        let r = solve(&m, &default_opts());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn warm_start_is_used() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary(10.0);
        let b = m.add_binary(13.0);
        let c = m.add_binary(7.0);
        m.add_le(vec![(a, 3.0), (b, 4.0), (c, 2.0)], 5.0);
        // Start at the suboptimal {b} = 13.
        let start = [0.0, 1.0, 0.0];
        let opts = MilpOptions {
            max_nodes: 1, // only the root
            ..default_opts()
        };
        let r = solve_with_start(&m, &opts, Some(&start));
        // Even with a tiny budget we must report at least the start value.
        assert!(r.objective >= 13.0 - 1e-9);
        assert!(r.has_solution());
    }

    #[test]
    fn node_budget_reports_feasible() {
        // A larger knapsack that needs more than one node, with a tight
        // budget: status must be Feasible (not Optimal) when budget binds,
        // or Optimal if the heuristics close the gap first.
        let mut m = Model::new(Sense::Maximize);
        let weights = [5.0, 4.0, 3.0, 7.0, 6.0, 2.0, 9.0, 8.0];
        let values = [10.0, 7.0, 5.0, 13.0, 11.0, 3.0, 16.0, 14.0];
        let vars: Vec<_> = values.iter().map(|&v| m.add_binary(v)).collect();
        m.add_le(
            vars.iter()
                .zip(weights.iter())
                .map(|(&v, &w)| (v, w))
                .collect(),
            20.0,
        );
        let mut opts = default_opts();
        opts.max_nodes = 3;
        let r = solve(&m, &opts);
        assert!(matches!(
            r.status,
            MilpStatus::Feasible | MilpStatus::Optimal
        ));
        if let Some(x) = &r.x {
            assert!(m.is_feasible(x, 1e-6));
        }
    }

    #[test]
    fn maximisation_bound_direction() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary(5.0);
        let b = m.add_binary(4.0);
        m.add_le(vec![(a, 1.0), (b, 1.0)], 1.0);
        let r = solve(&m, &default_opts());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective - 5.0).abs() < 1e-6);
        assert!(r.best_bound >= r.objective - 1e-6);
        assert!(r.gap < 1e-5);
    }
}

#[cfg(test)]
mod warm_start_tests {
    use super::*;

    fn knapsack(n: usize) -> Model {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_binary(((i * 17) % 23 + 3) as f64))
            .collect();
        m.add_le(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, ((i * 11) % 13 + 2) as f64))
                .collect(),
            (3 * n) as f64 / 2.0,
        );
        m
    }

    #[test]
    fn root_basis_reuse_matches_cold_result() {
        let m = knapsack(14);
        let opts = MilpOptions::default();
        let cold = solve(&m, &opts);
        assert_eq!(cold.status, MilpStatus::Optimal);
        assert!(cold.root_basis.is_some(), "root basis must be exported");
        let warm = solve_warm(
            &m,
            &opts,
            MilpWarmStart {
                start: cold.x.as_deref(),
                root_basis: cold.root_basis.as_ref(),
            },
        );
        assert_eq!(warm.status, MilpStatus::Optimal);
        assert!((warm.objective - cold.objective).abs() < 1e-6);
        assert!(
            warm.lp_iterations <= cold.lp_iterations,
            "warm {} > cold {} lp iterations",
            warm.lp_iterations,
            cold.lp_iterations
        );
    }

    #[test]
    fn stale_basis_from_smaller_model_is_repaired() {
        // Solve a 10-var knapsack, then reuse its root basis on a 14-var
        // one: the four appended columns must enter nonbasic and the
        // result must match a cold solve exactly.
        let small = knapsack(10);
        let opts = MilpOptions::default();
        let small_r = solve(&small, &opts);
        let big = knapsack(14);
        let cold = solve(&big, &opts);
        let warm = solve_warm(
            &big,
            &opts,
            MilpWarmStart {
                start: None,
                root_basis: small_r.root_basis.as_ref(),
            },
        );
        assert_eq!(warm.status, MilpStatus::Optimal);
        assert!((warm.objective - cold.objective).abs() < 1e-6);
    }
}

#[cfg(test)]
mod filter_tests {
    use super::*;

    /// max a + b st a + b <= 2 (binaries): optimum (1,1). A filter that
    /// rejects (1,1) must yield the next-best accepted point.
    #[test]
    fn incumbent_filter_rejects_solutions() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary(2.0);
        let b = m.add_binary(1.0);
        m.add_le(vec![(a, 1.0), (b, 1.0)], 2.0);
        let reject_both = |x: &[f64]| !(x[0] > 0.5 && x[1] > 0.5);
        let r = solve_filtered(&m, &MilpOptions::default(), None, &reject_both);
        // (1,1) filtered out; best accepted is (1,0) = 2.
        if let Some(x) = &r.x {
            assert!(reject_both(x), "returned solution violates the filter");
            assert!(r.objective <= 2.0 + 1e-9);
        }
    }

    /// The warm start bypasses the filter (caller vouches for it).
    #[test]
    fn start_bypasses_filter() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary(1.0);
        m.add_le(vec![(a, 1.0)], 1.0);
        let reject_all = |_: &[f64]| false;
        let start = [1.0];
        let opts = MilpOptions {
            max_nodes: 1,
            ..MilpOptions::default()
        };
        let r = solve_filtered(&m, &opts, Some(&start), &reject_all);
        assert!(r.has_solution());
        assert!((r.objective - 1.0).abs() < 1e-9);
    }
}
