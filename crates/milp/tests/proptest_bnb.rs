//! Property tests: branch & bound must match exhaustive enumeration on
//! random pure-integer programs.

use proptest::prelude::*;
use sqpr_milp::{solve, MilpOptions, MilpStatus, Model, Sense, VarType};

#[derive(Debug, Clone)]
struct RandomIp {
    nvars: usize,
    maximize: bool,
    obj: Vec<i32>,
    ub: Vec<u8>,                    // lower bounds are 0; upper in [0, 3]
    rows: Vec<(Vec<i32>, i32, u8)>, // coeffs, lb, width (range rows)
}

fn random_ip() -> impl Strategy<Value = RandomIp> {
    (1usize..=4, 1usize..=3, any::<bool>())
        .prop_flat_map(|(n, m, maximize)| {
            (
                Just(n),
                Just(maximize),
                proptest::collection::vec(-5i32..=5, n),
                proptest::collection::vec(0u8..=3, n),
                proptest::collection::vec(
                    (proptest::collection::vec(-3i32..=3, n), -6i32..=6, 0u8..=8),
                    m,
                ),
            )
        })
        .prop_map(|(nvars, maximize, obj, ub, rows)| RandomIp {
            nvars,
            maximize,
            obj,
            ub,
            rows,
        })
}

fn build(ip: &RandomIp) -> Model {
    let mut m = Model::new(if ip.maximize {
        Sense::Maximize
    } else {
        Sense::Minimize
    });
    let vars: Vec<_> = (0..ip.nvars)
        .map(|j| m.add_var(VarType::Integer, 0.0, ip.ub[j] as f64, ip.obj[j] as f64))
        .collect();
    for (coeffs, lb, width) in &ip.rows {
        m.add_range(
            *lb as f64,
            (*lb + *width as i32) as f64,
            vars.iter()
                .zip(coeffs)
                .map(|(&v, &c)| (v, c as f64))
                .collect(),
        );
    }
    m
}

/// Exhaustive search over all integer assignments.
fn enumerate(ip: &RandomIp) -> Option<f64> {
    let n = ip.nvars;
    let mut assign = vec![0i32; n];
    let mut best: Option<f64> = None;
    loop {
        let mut ok = true;
        for (coeffs, lb, width) in &ip.rows {
            let act: i32 = coeffs.iter().zip(&assign).map(|(c, a)| c * a).sum();
            if act < *lb || act > *lb + *width as i32 {
                ok = false;
                break;
            }
        }
        if ok {
            let obj: f64 = ip
                .obj
                .iter()
                .zip(&assign)
                .map(|(c, a)| (*c * *a) as f64)
                .sum();
            best = Some(match best {
                None => obj,
                Some(b) => {
                    if ip.maximize {
                        b.max(obj)
                    } else {
                        b.min(obj)
                    }
                }
            });
        }
        // Advance the counter.
        let mut k = 0;
        loop {
            if k == n {
                return best;
            }
            assign[k] += 1;
            if assign[k] <= ip.ub[k] as i32 {
                break;
            }
            assign[k] = 0;
            k += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn bnb_matches_enumeration(ip in random_ip()) {
        let model = build(&ip);
        let brute = enumerate(&ip);
        let r = solve(&model, &MilpOptions::default());
        match (brute, r.status) {
            (Some(obj), MilpStatus::Optimal) => {
                prop_assert!((obj - r.objective).abs() < 1e-6,
                    "enumeration {obj} vs bnb {}", r.objective);
                let x = r.x.expect("solution present");
                prop_assert!(model.is_feasible(&x, 1e-6));
            }
            (None, MilpStatus::Infeasible) => {}
            (b, s) => prop_assert!(false, "enumeration {b:?} vs bnb {s:?} ({})", r.objective),
        }
    }

    #[test]
    fn incumbents_always_model_feasible(ip in random_ip()) {
        let model = build(&ip);
        let mut opts = MilpOptions::default();
        opts.max_nodes = 5; // starve the search; whatever comes out must be valid
        let r = solve(&model, &opts);
        if let Some(x) = &r.x {
            prop_assert!(model.is_feasible(x, 1e-6));
            // Reported objective must match the point.
            prop_assert!((model.objective_value(x) - r.objective).abs() < 1e-6);
        }
    }
}
