//! Property tests: branch & bound must match exhaustive enumeration on
//! random pure-integer programs.
//!
//! Implemented as seeded random-case loops (the sanctioned dependency set
//! has no `proptest`); every case prints its seed on failure so it can be
//! replayed deterministically.

use sqpr_milp::{solve, MilpOptions, MilpStatus, Model, Sense, VarType};
use sqpr_workload::rng::{Rng, StdRng};

#[derive(Debug, Clone)]
struct RandomIp {
    nvars: usize,
    maximize: bool,
    obj: Vec<i32>,
    ub: Vec<u8>,                    // lower bounds are 0; upper in [0, 3]
    rows: Vec<(Vec<i32>, i32, u8)>, // coeffs, lb, width (range rows)
}

fn random_ip(rng: &mut StdRng) -> RandomIp {
    let nvars = rng.gen_index(4) + 1;
    let nrows = rng.gen_index(3) + 1;
    let maximize = rng.gen_bool();
    let obj = (0..nvars)
        .map(|_| rng.gen_range_i64(-5, 5) as i32)
        .collect();
    let ub = (0..nvars).map(|_| rng.gen_index(4) as u8).collect();
    let rows = (0..nrows)
        .map(|_| {
            (
                (0..nvars)
                    .map(|_| rng.gen_range_i64(-3, 3) as i32)
                    .collect(),
                rng.gen_range_i64(-6, 6) as i32,
                rng.gen_index(9) as u8,
            )
        })
        .collect();
    RandomIp {
        nvars,
        maximize,
        obj,
        ub,
        rows,
    }
}

fn build(ip: &RandomIp) -> Model {
    let mut m = Model::new(if ip.maximize {
        Sense::Maximize
    } else {
        Sense::Minimize
    });
    let vars: Vec<_> = (0..ip.nvars)
        .map(|j| m.add_var(VarType::Integer, 0.0, ip.ub[j] as f64, ip.obj[j] as f64))
        .collect();
    for (coeffs, lb, width) in &ip.rows {
        m.add_range(
            *lb as f64,
            (*lb + *width as i32) as f64,
            vars.iter()
                .zip(coeffs)
                .map(|(&v, &c)| (v, c as f64))
                .collect(),
        );
    }
    m
}

/// Exhaustive search over all integer assignments.
fn enumerate(ip: &RandomIp) -> Option<f64> {
    let n = ip.nvars;
    let mut assign = vec![0i32; n];
    let mut best: Option<f64> = None;
    loop {
        let mut ok = true;
        for (coeffs, lb, width) in &ip.rows {
            let act: i32 = coeffs.iter().zip(&assign).map(|(c, a)| c * a).sum();
            if act < *lb || act > *lb + *width as i32 {
                ok = false;
                break;
            }
        }
        if ok {
            let obj: f64 = ip
                .obj
                .iter()
                .zip(&assign)
                .map(|(c, a)| (*c * *a) as f64)
                .sum();
            best = Some(match best {
                None => obj,
                Some(b) => {
                    if ip.maximize {
                        b.max(obj)
                    } else {
                        b.min(obj)
                    }
                }
            });
        }
        // Advance the counter.
        let mut k = 0;
        loop {
            if k == n {
                return best;
            }
            assign[k] += 1;
            if assign[k] <= ip.ub[k] as i32 {
                break;
            }
            assign[k] = 0;
            k += 1;
        }
    }
}

#[test]
fn bnb_matches_enumeration() {
    for seed in 0..192u64 {
        let mut rng = StdRng::seed_from_u64(0xB4B ^ seed);
        let ip = random_ip(&mut rng);
        let model = build(&ip);
        let brute = enumerate(&ip);
        let r = solve(&model, &MilpOptions::default());
        match (brute, r.status) {
            (Some(obj), MilpStatus::Optimal) => {
                assert!(
                    (obj - r.objective).abs() < 1e-6,
                    "seed {seed}: enumeration {obj} vs bnb {} on {ip:?}",
                    r.objective
                );
                let x = r.x.expect("solution present");
                assert!(model.is_feasible(&x, 1e-6), "seed {seed}: {ip:?}");
            }
            (None, MilpStatus::Infeasible) => {}
            (b, s) => panic!(
                "seed {seed}: enumeration {b:?} vs bnb {s:?} ({}) on {ip:?}",
                r.objective
            ),
        }
    }
}

#[test]
fn incumbents_always_model_feasible() {
    for seed in 0..192u64 {
        let mut rng = StdRng::seed_from_u64(0x1AC ^ (seed << 2));
        let ip = random_ip(&mut rng);
        let model = build(&ip);
        let opts = MilpOptions {
            max_nodes: 5, // starve the search; whatever comes out must be valid
            ..MilpOptions::default()
        };
        let r = solve(&model, &opts);
        if let Some(x) = &r.x {
            assert!(model.is_feasible(x, 1e-6), "seed {seed}: {ip:?}");
            // Reported objective must match the point.
            assert!(
                (model.objective_value(x) - r.objective).abs() < 1e-6,
                "seed {seed}: {ip:?}"
            );
        }
    }
}
