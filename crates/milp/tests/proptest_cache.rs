//! Property tests: the cross-submission compressed-LP cache must be
//! behaviour-identical to fresh lowerings, and the lifted factor
//! generation must actually re-attach factorisations across solves.
//!
//! Implemented as seeded random-case loops (the sanctioned dependency set
//! has no `proptest`); every case prints its seed on failure so it can be
//! replayed deterministically.

use sqpr_milp::{
    solve, solve_warm_cached, LpCacheSlot, MilpOptions, MilpStatus, MilpWarmStart, Model, Sense,
    VarId,
};
use sqpr_workload::rng::{Rng, StdRng};

/// A random binary program over a fixed structure: the "skeleton" the
/// planner would keep across submissions.
fn random_skeleton(rng: &mut StdRng) -> (Model, Vec<VarId>) {
    let nvars = 4 + rng.gen_index(5);
    let mut m = Model::new(if rng.gen_bool() {
        Sense::Maximize
    } else {
        Sense::Minimize
    });
    let vars: Vec<VarId> = (0..nvars)
        .map(|_| m.add_binary(rng.gen_range_i64(-6, 7) as f64))
        .collect();
    for _ in 0..(1 + rng.gen_index(3)) {
        let mut terms = Vec::new();
        for &v in &vars {
            if rng.gen_bool() {
                terms.push((v, rng.gen_range_i64(1, 4) as f64));
            }
        }
        if terms.is_empty() {
            continue;
        }
        let rhs = rng.gen_range_i64(1, 2 * nvars as i64 + 1) as f64;
        m.add_le(terms, rhs);
    }
    (m, vars)
}

/// Multi-submission sequences: each round re-fixes a random subset of the
/// variables at random binary values (the planner's deployment-pin
/// pattern) and occasionally appends a cut row; the cached/patched path
/// must agree with a fresh cacheless solve on status and objective, round
/// after round, while the root basis of each cached solve warm-starts the
/// next (the cross-submission warm path end to end).
#[test]
fn cached_cross_submission_solves_match_fresh() {
    for seed in 0..25u64 {
        let mut rng = StdRng::seed_from_u64(0xCAC4E ^ seed);
        let (mut m, vars) = random_skeleton(&mut rng);
        let mut slot = LpCacheSlot::new();
        let opts = MilpOptions::default();
        let mut root_basis = None;
        for round in 0..10 {
            for &v in &vars {
                if rng.gen_bool() {
                    let val = if rng.gen_bool() { 1.0 } else { 0.0 };
                    m.set_bounds(v, val, val);
                } else {
                    m.set_bounds(v, 0.0, 1.0);
                }
            }
            if round > 0 && rng.gen_index(4) == 0 {
                // An availability-cut-style appended row (no structure bump).
                let mut terms = Vec::new();
                for &v in &vars {
                    if rng.gen_bool() {
                        terms.push((v, 1.0));
                    }
                }
                if !terms.is_empty() {
                    let rhs = (1 + rng.gen_index(vars.len())) as f64;
                    m.add_le(terms, rhs);
                }
            }
            let warm = MilpWarmStart {
                start: None,
                root_basis: root_basis.as_ref(),
            };
            let cached = solve_warm_cached(&m, &opts, warm, &mut slot);
            let fresh = solve(&m, &opts);
            assert_eq!(
                cached.status, fresh.status,
                "seed {seed} round {round}: status diverged"
            );
            if cached.status == MilpStatus::Optimal {
                assert!(
                    (cached.objective - fresh.objective).abs() <= 1e-6,
                    "seed {seed} round {round}: objective diverged: cached {} vs fresh {}",
                    cached.objective,
                    fresh.objective
                );
                let x = cached.x.as_ref().expect("optimal has a solution");
                assert!(
                    m.is_feasible(x, 1e-6),
                    "seed {seed} round {round}: cached solution infeasible"
                );
            }
            root_basis = cached.root_basis;
        }
        let stats = slot.stats();
        assert_eq!(
            stats.rebuilds + stats.patches,
            10,
            "seed {seed}: every round is a construction: {stats:?}"
        );
    }
}

/// The class keying must actually produce cross-submission patches on
/// re-fixed subsets: once every variable has been fixed at least once,
/// later rounds that only *move* pins within that class never rebuild.
#[test]
fn refix_rounds_patch_instead_of_rebuilding() {
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<VarId> = (0..6).map(|i| m.add_binary(1.0 + i as f64)).collect();
    m.add_le(vars.iter().map(|&v| (v, 1.0)).collect(), 3.0);
    // Submission 1 pins everything (the widest class).
    for (i, &v) in vars.iter().enumerate() {
        let val = (i % 2) as f64;
        m.set_bounds(v, val, val);
    }
    let mut slot = LpCacheSlot::new();
    let opts = MilpOptions::default();
    solve_warm_cached(&m, &opts, MilpWarmStart::default(), &mut slot);
    assert_eq!(slot.stats().rebuilds, 1);
    // Submissions 2..=5 re-pin different values of the same class.
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..4 {
        for &v in &vars {
            let val = if rng.gen_bool() { 1.0 } else { 0.0 };
            m.set_bounds(v, val, val);
        }
        solve_warm_cached(&m, &opts, MilpWarmStart::default(), &mut slot);
    }
    let stats = slot.stats();
    assert_eq!(stats.rebuilds, 1, "re-pins within the class: {stats:?}");
    assert_eq!(stats.patches, 4, "{stats:?}");
}

/// Cross-solve factor reuse: a pure-LP model solves once per tree, so a
/// second cached solve warm-started from the first's root basis must
/// re-attach the detached factorisation (token held across the pure bound
/// patch) — and must *not* when the ablation flag scopes the token per
/// tree.
#[test]
fn consecutive_cached_roots_reattach_factors() {
    fn model() -> (Model, VarId) {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous(0.0, 4.0, 1.0);
        let y = m.add_continuous(0.0, 4.0, 1.0);
        let z = m.add_continuous(0.0, 2.0, 0.5);
        m.add_le(vec![(x, 1.0), (y, 1.0)], 5.0);
        m.add_le(vec![(y, 1.0), (z, 1.0)], 3.0);
        m.fix_var(z, 1.0);
        (m, z)
    }

    for (flag, expect_reattach) in [(true, true), (false, false)] {
        let (mut m, z) = model();
        let mut slot = LpCacheSlot::new();
        let opts = MilpOptions {
            cross_solve_factors: flag,
            ..MilpOptions::default()
        };
        let r1 = solve_warm_cached(&m, &opts, MilpWarmStart::default(), &mut slot);
        assert_eq!(r1.status, MilpStatus::Optimal);
        assert_eq!(r1.lp_pivots.factor_reattaches, 0, "nothing cached yet");
        // Next "submission": same class, different pin value — bound patch
        // only, matrix untouched.
        m.set_bounds(z, 0.0, 0.0);
        let warm = MilpWarmStart {
            start: None,
            root_basis: r1.root_basis.as_ref(),
        };
        let r2 = solve_warm_cached(&m, &opts, warm, &mut slot);
        assert_eq!(r2.status, MilpStatus::Optimal);
        assert_eq!(slot.stats().patches, 1, "second solve must patch");
        if expect_reattach {
            assert!(
                r2.lp_pivots.factor_reattaches >= 1,
                "cross-solve factors enabled: the root must re-attach, got {:?}",
                r2.lp_pivots
            );
        } else {
            assert_eq!(
                r2.lp_pivots.factor_reattaches, 0,
                "ablation claims a fresh generation per tree"
            );
        }
    }
}

/// Appended cut rows change the matrix: the slot renews its generation, so
/// the next root must refactorise rather than re-attach stale factors (and
/// the solve must stay correct).
#[test]
fn appended_rows_fence_factor_reuse() {
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_continuous(0.0, 4.0, 1.0);
    let y = m.add_continuous(0.0, 4.0, 1.0);
    let f = m.add_continuous(0.0, 1.0, 0.0);
    m.add_le(vec![(x, 1.0), (y, 1.0)], 5.0);
    m.fix_var(f, 1.0);
    let mut slot = LpCacheSlot::new();
    let opts = MilpOptions::default();
    let r1 = solve_warm_cached(&m, &opts, MilpWarmStart::default(), &mut slot);
    assert_eq!(r1.status, MilpStatus::Optimal);
    m.add_le(vec![(x, 1.0)], 3.0); // cut: matrix grows a row
    let warm = MilpWarmStart {
        start: None,
        root_basis: r1.root_basis.as_ref(),
    };
    let r2 = solve_warm_cached(&m, &opts, warm, &mut slot);
    assert_eq!(r2.status, MilpStatus::Optimal);
    assert_eq!(
        r2.lp_pivots.factor_reattaches, 0,
        "a grown matrix must not re-attach factors built for the old shape"
    );
    assert!(
        (r2.objective - 5.0).abs() < 1e-6,
        "x + y <= 5 still binds under the cut: got {}",
        r2.objective
    );
    assert_eq!(slot.stats().appended_rows, 1);
}
