//! Property tests: parallel branch & bound must be *bit-identical* to the
//! sequential loop on random pure-integer programs — not "same optimum",
//! but the same tree (node count), the same simplex work (iteration and
//! pivot counters), the same objective bits, and the same incumbent.
//!
//! Speculative node evaluation only ever memoizes results that the strict
//! node-id-ordered replay would have computed itself, so every observable
//! of the search is invariant in `MilpOptions::threads`. These loops pin
//! that invariant across 1/2/4/8 explicit workers plus the `0` (= machine
//! parallelism) default.
//!
//! Implemented as seeded random-case loops (the sanctioned dependency set
//! has no `proptest`); every case prints its seed on failure so it can be
//! replayed deterministically.

use sqpr_milp::{solve, MilpOptions, MilpResult, Model, Sense, VarType};
use sqpr_workload::rng::{Rng, StdRng};

#[derive(Debug, Clone)]
struct RandomIp {
    nvars: usize,
    maximize: bool,
    obj: Vec<i32>,
    ub: Vec<u8>,                    // lower bounds are 0; upper in [0, 3]
    rows: Vec<(Vec<i32>, i32, u8)>, // coeffs, lb, width (range rows)
}

/// Harder than the `proptest_bnb` generator on purpose: the worker pool
/// only spawns after `POOL_SPAWN_NODES` sequential nodes, so the trees
/// here must routinely run past that threshold to exercise the
/// speculate/replay machinery rather than the inline fast path. Tight
/// correlated knapsack rows (weights in `[2, 9]`, capacity near half the
/// weight mass, profits tracking weights with noise) keep the LP root
/// fractional and the bound weak, which is what grows the tree.
fn random_ip(rng: &mut StdRng) -> RandomIp {
    let nvars = rng.gen_index(9) + 6;
    let nrows = rng.gen_index(3) + 2;
    let maximize = rng.gen_bool();
    let ub: Vec<u8> = (0..nvars).map(|_| rng.gen_index(3) as u8 + 1).collect();
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let coeffs: Vec<i32> = (0..nvars)
            .map(|_| {
                if rng.gen_index(10) < 7 {
                    rng.gen_range_i64(2, 9) as i32
                } else {
                    0
                }
            })
            .collect();
        let mass: i32 = coeffs.iter().zip(&ub).map(|(c, u)| c * *u as i32).sum();
        let cap = mass * (40 + rng.gen_index(21) as i32) / 100;
        // Activity is nonnegative (weights and variables are), so the
        // range [0, cap] is exactly the knapsack inequality.
        rows.push((coeffs, 0, cap.clamp(0, u8::MAX as i32) as u8));
    }
    // Profits correlated with the first row's weights (classic hard
    // knapsacks), negated for minimisation cases so the constraint binds.
    let sign = if maximize { 1 } else { -1 };
    let obj = rows[0]
        .0
        .iter()
        .map(|c| sign * (c + rng.gen_range_i64(-2, 2) as i32).max(1))
        .collect();
    RandomIp {
        nvars,
        maximize,
        obj,
        ub,
        rows,
    }
}

fn build(ip: &RandomIp) -> Model {
    let mut m = Model::new(if ip.maximize {
        Sense::Maximize
    } else {
        Sense::Minimize
    });
    let vars: Vec<_> = (0..ip.nvars)
        .map(|j| m.add_var(VarType::Integer, 0.0, ip.ub[j] as f64, ip.obj[j] as f64))
        .collect();
    for (coeffs, lb, width) in &ip.rows {
        m.add_range(
            *lb as f64,
            (*lb + *width as i32) as f64,
            vars.iter()
                .zip(coeffs)
                .map(|(&v, &c)| (v, c as f64))
                .collect(),
        );
    }
    m
}

/// Every observable of the search, compared bit-for-bit (objectives via
/// `to_bits`, not a tolerance: the replay runs the *same* floating-point
/// operations in the same order, so even the rounding must agree).
fn assert_identical(seed: u64, threads: usize, a: &MilpResult, b: &MilpResult, ip: &RandomIp) {
    let ctx = |field: &str| format!("seed {seed}, threads {threads}, {field} diverged on {ip:?}");
    assert_eq!(a.status, b.status, "{}", ctx("status"));
    assert_eq!(a.nodes, b.nodes, "{}", ctx("nodes"));
    assert_eq!(a.lp_iterations, b.lp_iterations, "{}", ctx("lp_iterations"));
    assert_eq!(a.lp_pivots, b.lp_pivots, "{}", ctx("lp_pivots"));
    assert_eq!(
        a.objective.to_bits(),
        b.objective.to_bits(),
        "{}",
        ctx("objective bits")
    );
    assert_eq!(
        a.best_bound.to_bits(),
        b.best_bound.to_bits(),
        "{}",
        ctx("best_bound bits")
    );
    match (&a.x, &b.x) {
        (None, None) => {}
        (Some(xa), Some(xb)) => {
            assert_eq!(xa.len(), xb.len(), "{}", ctx("solution length"));
            for (j, (va, vb)) in xa.iter().zip(xb).enumerate() {
                assert_eq!(
                    va.to_bits(),
                    vb.to_bits(),
                    "{}",
                    ctx(&format!("x[{j}] bits"))
                );
            }
        }
        _ => panic!("{}", ctx("solution presence")),
    }
}

#[test]
fn parallel_tree_is_bit_identical_to_sequential() {
    let mut deep_trees = 0usize;
    for seed in 0..96u64 {
        let mut rng = StdRng::seed_from_u64(0x9A7A ^ (seed << 1));
        let ip = random_ip(&mut rng);
        let model = build(&ip);
        let base = solve(
            &model,
            &MilpOptions {
                threads: 1,
                ..MilpOptions::default()
            },
        );
        // Count cases that actually outlive the lazy-spawn threshold; the
        // aggregate assert below keeps the generator honest.
        if base.nodes > 16 {
            deep_trees += 1;
        }
        for threads in [2usize, 4, 8, 0] {
            let r = solve(
                &model,
                &MilpOptions {
                    threads,
                    ..MilpOptions::default()
                },
            );
            assert_identical(seed, threads, &base, &r, &ip);
        }
    }
    assert!(
        deep_trees >= 10,
        "only {deep_trees}/96 cases grew past the pool spawn threshold; \
         the generator no longer exercises the parallel path"
    );
}

#[test]
fn parallel_matches_sequential_under_node_budget() {
    // Budget starvation interacts with speculation: evaluated-but-unreplayed
    // nodes must leave no trace in the counters, and the incumbent at cutoff
    // must be the sequential one.
    for seed in 0..96u64 {
        let mut rng = StdRng::seed_from_u64(0x5EED ^ (seed << 3));
        let ip = random_ip(&mut rng);
        let model = build(&ip);
        for max_nodes in [5usize, 24, 60] {
            let base = solve(
                &model,
                &MilpOptions {
                    threads: 1,
                    max_nodes,
                    ..MilpOptions::default()
                },
            );
            for threads in [2usize, 4, 8] {
                let r = solve(
                    &model,
                    &MilpOptions {
                        threads,
                        max_nodes,
                        ..MilpOptions::default()
                    },
                );
                assert_identical(seed, threads, &base, &r, &ip);
            }
        }
    }
}
