//! Property tests: a preemptible branch & bound chopped into arbitrary
//! suspend/resume slices must be *bit-identical* to the uninterrupted
//! search — same tree (node count), same simplex work (iteration and
//! pivot counters), same objective bits, same incumbent — at every
//! `lp_threads` setting, because a cut happens strictly between node
//! evaluations and node evaluation is a pure function of the node.
//!
//! Implemented as seeded random-case loops (the sanctioned dependency set
//! has no `proptest`); every case prints its seed on failure so it can be
//! replayed deterministically.

use sqpr_milp::{
    solve, solve_preemptible, LpCacheSlot, MilpOptions, MilpResult, MilpWarmStart, Model, Sense,
    SolveOutcome, VarType,
};
use sqpr_workload::rng::{Rng, StdRng};

#[derive(Debug, Clone)]
struct RandomIp {
    nvars: usize,
    maximize: bool,
    obj: Vec<i32>,
    ub: Vec<u8>,                    // lower bounds are 0; upper in [0, 3]
    rows: Vec<(Vec<i32>, i32, u8)>, // coeffs, lb, width (range rows)
}

/// Same correlated-knapsack generator as `proptest_parallel`: tight rows
/// keep the LP root fractional and the bound weak, so trees routinely grow
/// past a handful of nodes and the quantum cuts land mid-search rather
/// than after completion.
fn random_ip(rng: &mut StdRng) -> RandomIp {
    let nvars = rng.gen_index(9) + 6;
    let nrows = rng.gen_index(3) + 2;
    let maximize = rng.gen_bool();
    let ub: Vec<u8> = (0..nvars).map(|_| rng.gen_index(3) as u8 + 1).collect();
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let coeffs: Vec<i32> = (0..nvars)
            .map(|_| {
                if rng.gen_index(10) < 7 {
                    rng.gen_range_i64(2, 9) as i32
                } else {
                    0
                }
            })
            .collect();
        let mass: i32 = coeffs.iter().zip(&ub).map(|(c, u)| c * *u as i32).sum();
        let cap = mass * (40 + rng.gen_index(21) as i32) / 100;
        rows.push((coeffs, 0, cap.clamp(0, u8::MAX as i32) as u8));
    }
    let sign = if maximize { 1 } else { -1 };
    let obj = rows[0]
        .0
        .iter()
        .map(|c| sign * (c + rng.gen_range_i64(-2, 2) as i32).max(1))
        .collect();
    RandomIp {
        nvars,
        maximize,
        obj,
        ub,
        rows,
    }
}

fn build(ip: &RandomIp) -> Model {
    let mut m = Model::new(if ip.maximize {
        Sense::Maximize
    } else {
        Sense::Minimize
    });
    let vars: Vec<_> = (0..ip.nvars)
        .map(|j| m.add_var(VarType::Integer, 0.0, ip.ub[j] as f64, ip.obj[j] as f64))
        .collect();
    for (coeffs, lb, width) in &ip.rows {
        m.add_range(
            *lb as f64,
            (*lb + *width as i32) as f64,
            vars.iter()
                .zip(coeffs)
                .map(|(&v, &c)| (v, c as f64))
                .collect(),
        );
    }
    m
}

/// Every observable of the search, compared bit-for-bit (objectives via
/// `to_bits`, not a tolerance: the resumed replay runs the *same*
/// floating-point operations in the same order, so even the rounding must
/// agree).
fn assert_identical(ctx: &str, a: &MilpResult, b: &MilpResult) {
    assert_eq!(a.status, b.status, "{ctx}: status diverged");
    assert_eq!(a.nodes, b.nodes, "{ctx}: nodes diverged");
    assert_eq!(
        a.lp_iterations, b.lp_iterations,
        "{ctx}: lp_iterations diverged"
    );
    assert_eq!(a.lp_pivots, b.lp_pivots, "{ctx}: lp_pivots diverged");
    assert_eq!(
        a.objective.to_bits(),
        b.objective.to_bits(),
        "{ctx}: objective bits diverged ({} vs {})",
        a.objective,
        b.objective
    );
    assert_eq!(
        a.best_bound.to_bits(),
        b.best_bound.to_bits(),
        "{ctx}: best_bound bits diverged"
    );
    match (&a.x, &b.x) {
        (None, None) => {}
        (Some(xa), Some(xb)) => {
            assert_eq!(xa.len(), xb.len(), "{ctx}: solution length diverged");
            for (j, (va, vb)) in xa.iter().zip(xb).enumerate() {
                assert_eq!(va.to_bits(), vb.to_bits(), "{ctx}: x[{j}] bits diverged");
            }
        }
        _ => panic!("{ctx}: solution presence diverged"),
    }
}

/// Drives a preemptible solve through the given quantum slices (the last
/// slice is always unbounded so the run terminates), counting cuts.
fn chopped(model: &Model, opts: &MilpOptions, quanta: &[usize]) -> (MilpResult, usize) {
    let mut cuts = 0usize;
    let mut slices = quanta.iter().copied();
    let first = slices.next().unwrap_or(usize::MAX);
    let mut outcome = solve_preemptible(model, opts, MilpWarmStart::default(), None, None, first);
    loop {
        match outcome {
            SolveOutcome::Done(r) => return (r, cuts),
            SolveOutcome::Suspended(state) => {
                cuts += 1;
                let q = slices.next().unwrap_or(usize::MAX);
                outcome = state.resume(None, q);
            }
        }
    }
}

#[test]
fn suspend_resume_is_bit_identical_to_uninterrupted() {
    for threads in [1usize, 0] {
        let mut cut_runs = 0usize;
        for seed in 0..64u64 {
            let mut rng = StdRng::seed_from_u64(0xC0DE ^ (seed << 2));
            let ip = random_ip(&mut rng);
            let model = build(&ip);
            let opts = MilpOptions {
                threads,
                ..MilpOptions::default()
            };
            let base = solve(&model, &opts);

            // Random quantum schedule, deliberately including 0-node
            // slices (suspend before the first evaluation) and quanta past
            // the tree size (the run completes mid-slice).
            let mut quanta = Vec::new();
            if rng.gen_bool() {
                quanta.push(0);
            }
            for _ in 0..rng.gen_index(4) + 1 {
                quanta.push(rng.gen_index(base.nodes.max(1) + 2));
            }
            quanta.push(base.nodes + 100); // past-completion slice
            let (r, cuts) = chopped(&model, &opts, &quanta);
            let ctx = format!("seed {seed}, threads {threads}, quanta {quanta:?} on {ip:?}");
            assert_identical(&ctx, &base, &r);
            if cuts > 0 {
                cut_runs += 1;
            }
        }
        assert!(
            cut_runs >= 20,
            "only {cut_runs}/64 runs actually suspended at threads={threads}; \
             the quantum schedule no longer exercises suspend/resume"
        );
    }
}

#[test]
fn single_node_quanta_match_uninterrupted() {
    // The pathological schedule: one node per slice, a cut at *every* node
    // boundary, at both thread settings.
    for threads in [1usize, 0] {
        for seed in 0..24u64 {
            let mut rng = StdRng::seed_from_u64(0xF1CE ^ (seed << 4));
            let ip = random_ip(&mut rng);
            let model = build(&ip);
            let opts = MilpOptions {
                threads,
                max_nodes: 200,
                ..MilpOptions::default()
            };
            let base = solve(&model, &opts);
            let quanta = vec![1usize; base.nodes + 2];
            let (r, _) = chopped(&model, &opts, &quanta);
            let ctx = format!("seed {seed}, threads {threads}, per-node cuts on {ip:?}");
            assert_identical(&ctx, &base, &r);
        }
    }
}

#[test]
fn suspend_leaves_cache_slot_serving_other_solves() {
    // A suspended search parked mid-tree must not corrupt the cache slot it
    // was served from: the slot keeps serving *other* solves while the
    // state is parked, and the parked search still finishes identically.
    for seed in 0..16u64 {
        let mut rng = StdRng::seed_from_u64(0x51A7 ^ (seed << 5));
        let ip = random_ip(&mut rng);
        let model = build(&ip);
        let opts = MilpOptions {
            threads: 1,
            ..MilpOptions::default()
        };
        let base = solve(&model, &opts);

        let mut slot = LpCacheSlot::new();
        let outcome = solve_preemptible(
            &model,
            &opts,
            MilpWarmStart::default(),
            None,
            Some(&mut slot),
            (base.nodes / 2).max(1),
        );
        match outcome {
            SolveOutcome::Done(r) => {
                // Tree too small to cut in half — still must match.
                assert_identical(&format!("seed {seed} (uncut)"), &base, &r);
            }
            SolveOutcome::Suspended(state) => {
                // Interleave: a different full solve through the same slot
                // while the first search is parked.
                let again = sqpr_milp::solve_warm_cached(
                    &model,
                    &opts,
                    MilpWarmStart::default(),
                    &mut slot,
                );
                assert_eq!(again.status, base.status, "seed {seed}: slot corrupted");
                assert_eq!(
                    again.objective.to_bits(),
                    base.objective.to_bits(),
                    "seed {seed}: interleaved solve diverged"
                );
                // The parked search resumes and finishes bit-identically.
                let SolveOutcome::Done(r) = state.resume(None, usize::MAX) else {
                    panic!("seed {seed}: unbounded resume slice suspended");
                };
                assert_identical(&format!("seed {seed} (resumed)"), &base, &r);
            }
        }
    }
}
