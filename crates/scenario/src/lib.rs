//! # sqpr-scenario
//!
//! The declarative scenario corpus: data-driven event scripts with
//! golden-file verdicts for the SQPR planner.
//!
//! Each scenario is a TOML-subset file (`tests/scenarios/*.toml` at the
//! workspace root) describing a generated system, a timed event script —
//! query arrivals, rate drift and bursts fed through §IV-B adaptation,
//! host/link failures and restores driving recovery storms, removals,
//! admission retries — and an expectations block. The runner executes
//! every scenario three ways (warm planner at `lp_threads` 1 and 0, plus
//! a cold twin), asserts thread-count bit-invariance and warm/cold
//! agreement, diffs the canonical verdict transcript against a committed
//! golden file (`SQPR_BLESS=1` re-blesses), and emits one committed
//! `BENCH_scenario_<name>.json` per scenario.
//!
//! ```
//! use sqpr_scenario::{run_scenario, ScenarioSpec};
//!
//! let spec = ScenarioSpec::parse(r#"
//!     name = "doc"
//!     [system]
//!     kind = "paper_cluster"
//!     scale = 0.2
//!     queries = 3
//!     max_nodes = 40
//!     [[event]]
//!     kind = "submit"
//!     count = 3
//! "#).unwrap();
//! let run = run_scenario(&spec).unwrap();
//! assert!(run.transcript.starts_with("scenario doc\n"));
//! ```

pub mod runner;
pub mod spec;
pub mod toml;
pub mod verdict;

pub use runner::{check_scenario_file, discover, run_scenario, ScenarioRun};
pub use spec::{Event, Expectations, HostClass, ScenarioSpec, SpecError, SystemKind, SystemSpec};
pub use toml::{parse as parse_toml, ParseError, Value};
pub use verdict::{first_diff, fmt_f64_bits, JsonObject, Transcript};
