//! Scenario execution: the three-way drive and its cross-checks.
//!
//! Every scenario is executed three times from scratch:
//!
//! 1. **warm, `lp_threads = 1`** — the canonical run. Its transcript is
//!    what golden files record and its counters feed the bench JSON.
//! 2. **warm, `lp_threads = 0`** (all cores) — must reproduce the
//!    canonical transcript *byte for byte*: admit/reject decisions,
//!    placements/flow counts, node counts and objective bits are all in
//!    the transcript, so equality is the full determinism claim of the
//!    speculate-and-replay parallel branch & bound.
//! 3. **cold, `lp_threads = 1`** — a twin with `reuse_solver_context`
//!    off. Warm and cold solve different model sequences and may land on
//!    alternate optima within the MIP gap, so the contract is weaker:
//!    identical admit/reject sequence, identical final admitted count,
//!    and final objectives within 2% relative tolerance.
//!
//! Scenario-level expectations (`[expect]`) and per-event patch-rate
//! floors are checked on the canonical run only; adaptation/storm
//! accounting identities (`replanned = readmitted + dropped`, no silent
//! drops) are checked on every drive.
//!
//! **Deadline mode** (`[system] round_deadline`): submissions route
//! through the [`AdmissionQueue`] and may park mid-search, so warm and
//! cold twins — whose trees differ in size — preempt different rounds.
//! The warm/cold contract therefore relaxes to *drained admit-set
//! equality*, and a fourth drive with the deadline stripped pins that the
//! deadline machinery changes **when** queries are admitted, never
//! **whether**. The `lp_threads` byte-identity check is unchanged: the
//! deadline is node-counted, so preemption points are thread-invariant.

use std::fs;
use std::path::Path;

use sqpr_core::{
    adapt_to_observed_rates, recover_from_failures, AdaptReport, AdmissionPath, AdmissionQueue,
    Admitted, DriftMonitor, PlannerConfig, Rejected, RoundVerdict, SolveBudget, SqprPlanner,
    StormBudget,
};
use sqpr_dsps::{HostId, HostSpec, QueryId, StreamId};
use sqpr_workload::{generate_with_hosts, Workload, WorkloadSpec};

use crate::spec::{Event, ScenarioSpec, SystemKind, SystemSpec};
use crate::verdict::{first_diff, fmt_f64_bits, JsonObject, Transcript};

/// Relative tolerance for the warm-vs-cold final objective (alternate
/// optima within the MIP gap; same bound as `tests/warm_start_equivalence`).
const OBJ_TOL: f64 = 0.02;

/// A completed scenario run: the canonical transcript and bench JSON.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    pub name: String,
    pub transcript: String,
    pub bench_json: String,
}

/// Cumulative counters of one drive (the bench JSON's raw material).
#[derive(Debug, Clone, Copy, Default)]
struct Counters {
    submitted: usize,
    admits: usize,
    rejects: usize,
    reused: usize,
    retries: usize,
    retry_admits: usize,
    adapt_rounds: usize,
    drifted_streams: usize,
    replanned: usize,
    readmitted: usize,
    adapt_dropped: usize,
    storms: usize,
    storm_replanned: usize,
    storm_degraded: usize,
    storm_dropped: usize,
    rehomed: usize,
    removed: usize,
    nodes_total: usize,
    lp_iterations: usize,
    cache_patches: usize,
    cache_rebuilds: usize,
    cache_refix_patches: usize,
    // Deadline mode (`[system] round_deadline`): admission-queue traffic.
    parked: usize,
    pump_ticks: usize,
    resumed: usize,
    incumbent_handoffs: usize,
    greedy_installs: usize,
    deferred_replans: usize,
}

/// The outcome of driving one planner through the script.
struct Drive {
    transcript: Transcript,
    counters: Counters,
    /// Admit/reject per `submit`-event submission, arrival order. In
    /// deadline mode this records the *submit-time* answer (a parked
    /// submission is `false` even if it later resolves to an admit).
    admits: Vec<bool>,
    final_admitted: usize,
    /// Admitted query ids at end of script (sorted). The deadline-mode
    /// cross-drive contract compares this set — submit-time sequences
    /// legitimately differ when warm and cold trees preempt differently.
    final_admit_set: Vec<u32>,
    final_objective: f64,
    deployment_valid: bool,
    /// Expectation/invariant violations found during the drive.
    errors: Vec<String>,
}

fn build_workload(sys: &SystemSpec) -> Workload {
    let mut spec = match sys.kind {
        SystemKind::PaperSim => WorkloadSpec::paper_sim(sys.scale),
        SystemKind::PaperCluster => WorkloadSpec::paper_cluster(sys.scale),
    };
    if let Some(seed) = sys.seed {
        spec.seed = seed;
    }
    if let Some(q) = sys.queries {
        spec.queries = q;
    }
    if let Some(z) = sys.zipf_theta {
        spec.zipf_theta = z;
    }
    let hosts: Vec<HostSpec> = if sys.hosts.is_empty() {
        vec![HostSpec::new(spec.cpu_capacity, spec.host_bandwidth); spec.hosts]
    } else {
        sys.hosts
            .iter()
            .flat_map(|c| std::iter::repeat_n(HostSpec::new(c.cpu, c.bandwidth), c.count))
            .collect()
    };
    generate_with_hosts(&spec, &hosts)
}

/// Drives one fresh planner through the whole script.
fn drive(spec: &ScenarioSpec, warm: bool, threads: usize) -> Drive {
    let workload = build_workload(&spec.system);
    let mut config = PlannerConfig::new(&workload.catalog);
    // Node-only budgets keep every solve a pure function of the script.
    config.budget = SolveBudget::nodes(spec.system.max_nodes);
    config.lp_threads = threads;
    config.reuse_solver_context = warm;
    // An explicit quantum pins the scenario against the SQPR_NODE_QUANTUM
    // fuzz matrix; absent, the env-derived default stays (transparent
    // without a deadline, which is exactly what the matrix asserts).
    if let Some(q) = spec.system.node_quantum {
        config.node_quantum = q;
    }
    config.round_deadline = spec.system.round_deadline;
    let deadline_mode = spec.system.round_deadline.is_some();
    let nominal: Vec<(StreamId, f64)> = workload
        .bases
        .iter()
        .map(|&s| (s, workload.catalog.stream(s).rate))
        .collect();
    let mut planner = SqprPlanner::new(workload.catalog.clone(), config);
    let mut monitor = DriftMonitor::new(16, 1);
    let mut queue = AdmissionQueue::new();
    // Submissions routed through the queue and records already shown in
    // the transcript (the ledger also logs `Direct` entries on submit).
    let mut routed = 0usize;
    let mut logged = 0usize;
    let mut d = Drive {
        transcript: Transcript::default(),
        counters: Counters::default(),
        admits: Vec::new(),
        final_admitted: 0,
        final_admit_set: Vec::new(),
        final_objective: 0.0,
        deployment_valid: false,
        errors: Vec::new(),
    };
    d.transcript.push(format!("scenario {}", spec.name));
    d.transcript.push(format!(
        "system hosts={} bases={} queries={} budget={}",
        planner.catalog().num_hosts(),
        workload.bases.len(),
        workload.queries.len(),
        spec.system.max_nodes
    ));

    let mut cursor = 0usize;
    // Queries removed by the script: retries must not resurrect them.
    let mut removed: std::collections::BTreeSet<QueryId> = std::collections::BTreeSet::new();
    for ev in &spec.events {
        match ev {
            Event::Submit {
                count,
                min_patch_rate,
            } => {
                let mut patches = 0usize;
                let mut rebuilds = 0usize;
                for _ in 0..*count {
                    let Some(bases) = workload.queries.get(cursor) else {
                        d.errors
                            .push("script submits more queries than the workload has".into());
                        break;
                    };
                    cursor += 1;
                    let o;
                    let mut was_parked = false;
                    if deadline_mode {
                        let parked_before = queue.parked();
                        o = queue
                            .submit(&mut planner, bases)
                            .expect("generated queries are well-formed");
                        routed += 1;
                        logged = queue.records().len();
                        was_parked = queue.parked() > parked_before;
                        d.counters.parked += usize::from(was_parked);
                    } else {
                        o = planner
                            .submit(bases)
                            .expect("generated queries are well-formed");
                    }
                    d.admits.push(o.admitted);
                    d.counters.submitted += 1;
                    // A parked submission has no terminal answer yet; its
                    // admit/reject is counted when the queue resolves it.
                    if !was_parked {
                        if o.admitted {
                            d.counters.admits += 1;
                        } else {
                            d.counters.rejects += 1;
                        }
                    }
                    if o.reused_existing {
                        d.counters.reused += 1;
                    }
                    account_outcome(&mut d.counters, &o);
                    patches += o.lp_cache.patches;
                    rebuilds += o.lp_cache.rebuilds;
                    if deadline_mode {
                        d.transcript.push(format!(
                            "submit q{} {} reused={} nodes={} verdict={}{}",
                            o.query.0,
                            verdict(o.admitted),
                            o.reused_existing,
                            o.nodes,
                            fmt_verdict(o.verdict),
                            if was_parked { " parked" } else { "" }
                        ));
                    } else {
                        d.transcript.push(format!(
                            "submit q{} {} reused={} nodes={}",
                            o.query.0,
                            verdict(o.admitted),
                            o.reused_existing,
                            o.nodes
                        ));
                    }
                }
                check_patch_floor(&mut d, "submit", *min_patch_rate, patches, rebuilds, warm);
            }
            Event::Observe {
                drift,
                t,
                samples,
                tick,
                streams,
            } => {
                let selected = select_streams(&nominal, streams, &mut d.errors);
                for k in 0..*samples {
                    let tk = t + (k as f64) * tick;
                    monitor.observe_all(&drift.observed_rates(&selected, tk));
                }
                d.transcript.push(format!(
                    "observe t={t} streams={} samples={samples}",
                    selected.len()
                ));
            }
            Event::Adapt { threshold } => {
                match monitor.adapt_if_drifted(&mut planner, *threshold) {
                    None => d
                        .transcript
                        .push(format!("adapt threshold={threshold} quiet")),
                    Some(r) => {
                        account_adapt(&mut d, &r, spec.expect.zero_dropped);
                        d.transcript.push(format!(
                        "adapt threshold={threshold} drifted={} replanned={} readmitted={} dropped={}",
                        r.drifted_streams.len(),
                        r.replanned.len(),
                        r.readmitted.len(),
                        r.dropped.len()
                    ));
                    }
                }
            }
            Event::Drift {
                drift,
                t,
                threshold,
                streams,
            } => {
                let selected = select_streams(&nominal, streams, &mut d.errors);
                let observed = drift.observed_rates(&selected, *t);
                let r = adapt_to_observed_rates(&mut planner, &observed, *threshold);
                account_adapt(&mut d, &r, spec.expect.zero_dropped);
                d.transcript.push(format!(
                    "drift t={t} threshold={threshold} drifted={} replanned={} readmitted={} dropped={}",
                    r.drifted_streams.len(),
                    r.replanned.len(),
                    r.readmitted.len(),
                    r.dropped.len()
                ));
            }
            Event::FailHosts { hosts } => {
                for &h in hosts {
                    planner.fail_host(HostId(h as u32));
                }
                d.transcript.push(format!("fail hosts={hosts:?}"));
            }
            Event::RestoreHosts { hosts } => {
                for &h in hosts {
                    planner.restore_host(HostId(h as u32));
                }
                d.transcript.push(format!("restore hosts={hosts:?}"));
            }
            Event::DegradeLink { from, to, capacity } => {
                planner.degrade_link(HostId(*from as u32), HostId(*to as u32), *capacity);
                d.transcript
                    .push(format!("degrade link={from}->{to} capacity={capacity}"));
            }
            Event::RestoreLink { from, to } => {
                planner.restore_link(HostId(*from as u32), HostId(*to as u32));
                d.transcript.push(format!("restore link={from}->{to}"));
            }
            Event::Recover { max_nodes } => {
                let r = recover_from_failures(&mut planner, &StormBudget::nodes(*max_nodes));
                d.counters.storms += 1;
                d.counters.storm_replanned += r.replanned();
                d.counters.storm_degraded += r.degraded();
                d.counters.storm_dropped += r.dropped();
                d.counters.rehomed += r.rehomed.len();
                d.counters.nodes_total += r.nodes_spent;
                if r.recoveries.len() != r.replanned() + r.degraded() + r.dropped() {
                    d.errors.push(format!(
                        "storm accounting leak: {} displaced vs {}+{}+{}",
                        r.recoveries.len(),
                        r.replanned(),
                        r.degraded(),
                        r.dropped()
                    ));
                }
                if spec.expect.zero_dropped && r.dropped() > 0 {
                    d.errors
                        .push(format!("storm dropped {} queries", r.dropped()));
                }
                d.transcript.push(format!(
                    "recover displaced={} replanned={} degraded={} dropped={} rehomed={} nodes={}",
                    r.recoveries.len(),
                    r.replanned(),
                    r.degraded(),
                    r.dropped(),
                    r.rehomed.len(),
                    r.nodes_spent
                ));
            }
            Event::Remove { queries } => {
                for &q in queries {
                    let ok = planner.remove_query(QueryId(q));
                    if ok {
                        d.counters.removed += 1;
                        removed.insert(QueryId(q));
                    }
                    d.transcript.push(format!("remove q{q} ok={ok}"));
                }
            }
            Event::Retry {
                max,
                min_patch_rate,
            } => {
                let mut rejected: Vec<QueryId> = planner
                    .queries()
                    .iter()
                    .map(|s| s.id)
                    .filter(|id| {
                        !planner.state().admitted().contains_key(id) && !removed.contains(id)
                    })
                    .collect();
                rejected.sort();
                if let Some(cap) = max {
                    rejected.truncate(*cap);
                }
                let mut patches = 0usize;
                let mut rebuilds = 0usize;
                for q in rejected {
                    let o = planner
                        .replan_query(q)
                        .expect("rejected queries stay registered");
                    d.counters.retries += 1;
                    if o.admitted {
                        d.counters.retry_admits += 1;
                    }
                    account_outcome(&mut d.counters, &o);
                    patches += o.lp_cache.patches;
                    rebuilds += o.lp_cache.rebuilds;
                    d.transcript.push(format!(
                        "retry q{} {} nodes={}",
                        q.0,
                        verdict(o.admitted),
                        o.nodes
                    ));
                }
                check_patch_floor(&mut d, "retry", *min_patch_rate, patches, rebuilds, warm);
            }
            Event::Pump { ticks } => {
                for _ in 0..*ticks {
                    let resolved = queue.pump(&mut planner);
                    d.counters.pump_ticks += 1;
                    for o in &resolved {
                        if o.admitted {
                            d.counters.admits += 1;
                        } else {
                            d.counters.rejects += 1;
                        }
                        account_outcome(&mut d.counters, o);
                    }
                    d.transcript.push(format!(
                        "pump tick={} resolved={} parked={}",
                        queue.tick(),
                        resolved.len(),
                        queue.parked()
                    ));
                    logged = push_resolutions(&mut d, &queue, logged);
                }
            }
            Event::Drain => {
                let resolved = queue.drain(&mut planner);
                for o in &resolved {
                    if o.admitted {
                        d.counters.admits += 1;
                    } else {
                        d.counters.rejects += 1;
                    }
                    account_outcome(&mut d.counters, o);
                }
                d.transcript.push(format!(
                    "drain resolved={} parked={}",
                    resolved.len(),
                    queue.parked()
                ));
                logged = push_resolutions(&mut d, &queue, logged);
            }
        }
        d.transcript.push(format!(
            "  state admitted={} placements={} flows={} obj={}",
            planner.num_admitted(),
            planner.state().placements().len(),
            planner.state().flows().len(),
            fmt_f64_bits(planner.deployment_objective())
        ));
    }

    if deadline_mode {
        // Zero silent drops: nothing may stay parked past the script's end,
        // and the ledger must hold one terminal record per routed
        // submission.
        if queue.parked() > 0 {
            d.errors.push(format!(
                "{} submissions left parked — the script must pump/drain the admission queue",
                queue.parked()
            ));
        }
        if queue.records().len() != routed {
            d.errors.push(format!(
                "admission ledger covers {} of {} submissions",
                queue.records().len(),
                routed
            ));
        }
        for r in queue.records() {
            match r.path {
                AdmissionPath::Direct => {}
                AdmissionPath::Resumed => d.counters.resumed += 1,
                AdmissionPath::IncumbentHandoff => d.counters.incumbent_handoffs += 1,
                AdmissionPath::GreedyInstall => d.counters.greedy_installs += 1,
                AdmissionPath::DeferredReplan => d.counters.deferred_replans += 1,
            }
        }
    }
    d.final_admitted = planner.num_admitted();
    d.final_admit_set = planner.state().admitted().keys().map(|q| q.0).collect();
    d.final_objective = planner.deployment_objective();
    d.deployment_valid = planner.state().is_valid(planner.catalog());
    d.transcript.push(format!(
        "final admitted={}/{} objective={} valid={}",
        d.final_admitted,
        d.counters.submitted,
        fmt_f64_bits(d.final_objective),
        d.deployment_valid
    ));
    if !d.deployment_valid {
        d.errors.push("final deployment is invalid".into());
    }
    d
}

fn verdict(admitted: bool) -> &'static str {
    if admitted {
        "ADMIT"
    } else {
        "REJECT"
    }
}

fn fmt_verdict(v: RoundVerdict) -> &'static str {
    match v {
        RoundVerdict::Admitted(Admitted::Proven) => "admit-proven",
        RoundVerdict::Admitted(Admitted::IncumbentAtDeadline) => "admit-incumbent",
        RoundVerdict::Rejected(Rejected::Proven) => "reject-proven",
        RoundVerdict::Rejected(Rejected::DeadlineNoCertificate) => "no-certificate",
    }
}

fn fmt_path(p: AdmissionPath) -> &'static str {
    match p {
        AdmissionPath::Direct => "direct",
        AdmissionPath::Resumed => "resumed",
        AdmissionPath::IncumbentHandoff => "handoff",
        AdmissionPath::GreedyInstall => "greedy",
        AdmissionPath::DeferredReplan => "deferred",
    }
}

/// Appends one transcript line per admission record not yet shown (ladder
/// resolutions surfaced by a `pump`/`drain`), returning the new cursor.
fn push_resolutions(d: &mut Drive, queue: &AdmissionQueue, logged: usize) -> usize {
    for r in &queue.records()[logged..] {
        d.transcript.push(format!(
            "  resolve q{} verdict={} path={} attempts={}",
            r.query.0,
            fmt_verdict(r.verdict),
            fmt_path(r.path),
            r.attempts
        ));
    }
    queue.records().len()
}

fn account_outcome(c: &mut Counters, o: &sqpr_core::PlanningOutcome) {
    c.nodes_total += o.nodes;
    c.lp_iterations += o.lp_iterations;
    c.cache_patches += o.lp_cache.patches;
    c.cache_rebuilds += o.lp_cache.rebuilds;
    c.cache_refix_patches += o.lp_cache.refix_patches;
}

fn account_adapt(d: &mut Drive, r: &AdaptReport, zero_dropped: bool) {
    d.counters.adapt_rounds += 1;
    d.counters.drifted_streams += r.drifted_streams.len();
    d.counters.replanned += r.replanned.len();
    d.counters.readmitted += r.readmitted.len();
    d.counters.adapt_dropped += r.dropped.len();
    if r.replanned.len() != r.readmitted.len() + r.dropped.len() {
        d.errors.push(format!(
            "adapt accounting leak: {} replanned vs {} readmitted + {} dropped",
            r.replanned.len(),
            r.readmitted.len(),
            r.dropped.len()
        ));
    }
    if zero_dropped && !r.dropped.is_empty() {
        d.errors
            .push(format!("adaptation dropped queries {:?}", r.dropped));
    }
}

fn select_streams(
    nominal: &[(StreamId, f64)],
    indices: &[usize],
    errors: &mut Vec<String>,
) -> Vec<(StreamId, f64)> {
    if indices.is_empty() {
        return nominal.to_vec();
    }
    let mut out = Vec::with_capacity(indices.len());
    for &i in indices {
        match nominal.get(i) {
            Some(&pair) => out.push(pair),
            None => errors.push(format!(
                "stream index {i} out of range ({} bases)",
                nominal.len()
            )),
        }
    }
    out
}

/// Per-event compressed-LP patch-rate floor (canonical warm drive only —
/// the cold twin has no cache by construction).
fn check_patch_floor(
    d: &mut Drive,
    what: &str,
    floor: Option<f64>,
    patches: usize,
    rebuilds: usize,
    warm: bool,
) {
    let Some(floor) = floor else {
        return;
    };
    if !warm {
        return;
    }
    let total = patches + rebuilds;
    if total == 0 {
        // All rounds short-circuited: no cache activity to floor.
        return;
    }
    let rate = patches as f64 / total as f64;
    if rate < floor {
        d.errors.push(format!(
            "{what} event patch rate {rate:.3} below floor {floor:.3} ({patches} patches / {rebuilds} rebuilds)"
        ));
    }
}

/// Executes the three-way drive for one scenario and applies every
/// cross-check and expectation. Returns the canonical run on success, the
/// full list of violations otherwise.
pub fn run_scenario(spec: &ScenarioSpec) -> Result<ScenarioRun, Vec<String>> {
    let warm1 = drive(spec, true, 1);
    let warm0 = drive(spec, true, 0);
    let cold1 = drive(spec, false, 1);
    let deadline_mode = spec.system.round_deadline.is_some();
    let mut errors = warm1.errors.clone();

    // Thread-count bit-invariance: the whole transcript, bits included.
    // This holds in deadline mode too — the round deadline is node-counted,
    // so which rounds preempt/park is itself thread-invariant.
    if let Some(diff) = first_diff(&warm1.transcript.render(), &warm0.transcript.render()) {
        errors.push(format!("lp_threads=0 diverges from lp_threads=1 at {diff}"));
    }

    if deadline_mode {
        // Warm and cold trees differ in size, so deadlines preempt
        // different rounds and submit-time sequences legitimately diverge;
        // anytime handoffs may also install alternate placements, putting
        // the objective outside the usual tolerance. The deadline contract
        // is about *admission*: once drained, both twins must serve the
        // same query set.
        if warm1.final_admit_set != cold1.final_admit_set {
            errors.push(format!(
                "warm/cold drained admit sets differ: {:?} vs {:?}",
                warm1.final_admit_set, cold1.final_admit_set
            ));
        }
        // And the whole deadline machinery must not change who gets in: a
        // deadline-free twin of the same script reaches the same set.
        let mut free_spec = spec.clone();
        free_spec.system.round_deadline = None;
        let free = drive(&free_spec, true, 1);
        if free.final_admit_set != warm1.final_admit_set {
            errors.push(format!(
                "drained admit set {:?} differs from the deadline-free run's {:?}",
                warm1.final_admit_set, free.final_admit_set
            ));
        }
    } else {
        // Warm vs cold: same decisions, objective within tolerance.
        if warm1.admits != cold1.admits {
            errors.push(format!(
                "warm/cold admit sequences differ: warm={} cold={}",
                admit_string(&warm1.admits),
                admit_string(&cold1.admits)
            ));
        }
        if warm1.final_admitted != cold1.final_admitted {
            errors.push(format!(
                "warm/cold final admitted differ: {} vs {}",
                warm1.final_admitted, cold1.final_admitted
            ));
        }
        let denom = warm1.final_objective.abs().max(1e-9);
        let rel = (warm1.final_objective - cold1.final_objective).abs() / denom;
        if rel > OBJ_TOL {
            errors.push(format!(
                "warm/cold objectives differ by {:.4} (> {OBJ_TOL}): {} vs {}",
                rel, warm1.final_objective, cold1.final_objective
            ));
        }
    }
    for e in &cold1.errors {
        errors.push(format!("cold twin: {e}"));
    }

    // Scenario expectations, on the canonical drive.
    let exp = &spec.expect;
    if let Some(want) = &exp.admits {
        let got = admit_string(&warm1.admits);
        if &got != want {
            errors.push(format!("admit sequence {got} != expected {want}"));
        }
    }
    if let Some(min) = exp.min_admitted {
        if warm1.final_admitted < min {
            errors.push(format!(
                "final admitted {} below floor {min}",
                warm1.final_admitted
            ));
        }
    }
    if let Some(min) = exp.min_replanned {
        if warm1.counters.replanned < min {
            errors.push(format!(
                "adaptation replanned {} queries, floor is {min}",
                warm1.counters.replanned
            ));
        }
    }
    if let Some(min) = exp.min_admit_fraction {
        let frac = if warm1.counters.submitted == 0 {
            1.0
        } else {
            warm1.final_admitted as f64 / warm1.counters.submitted as f64
        };
        if frac < min {
            errors.push(format!("admit fraction {frac:.3} below floor {min:.3}"));
        }
    }

    if !errors.is_empty() {
        return Err(errors);
    }
    Ok(ScenarioRun {
        name: spec.name.clone(),
        transcript: warm1.transcript.render(),
        bench_json: bench_json(spec, &warm1),
    })
}

fn admit_string(admits: &[bool]) -> String {
    admits.iter().map(|&a| if a { 'A' } else { 'R' }).collect()
}

fn bench_json(spec: &ScenarioSpec, d: &Drive) -> String {
    let c = &d.counters;
    let cache_total = c.cache_patches + c.cache_rebuilds;
    let patch_rate = if cache_total == 0 {
        0.0
    } else {
        c.cache_patches as f64 / cache_total as f64
    };
    JsonObject::new()
        .str("bench", &format!("scenario_{}", spec.name))
        .str("scenario", &spec.name)
        .uint("submitted", c.submitted)
        .uint("admits", c.admits)
        .uint("rejects", c.rejects)
        .uint("reused_existing", c.reused)
        .uint("retries", c.retries)
        .uint("retry_admits", c.retry_admits)
        .uint("adapt_rounds", c.adapt_rounds)
        .uint("drifted_streams", c.drifted_streams)
        .uint("replanned", c.replanned)
        .uint("readmitted", c.readmitted)
        .uint("adapt_dropped", c.adapt_dropped)
        .uint("storms", c.storms)
        .uint("storm_replanned", c.storm_replanned)
        .uint("storm_degraded", c.storm_degraded)
        .uint("storm_dropped", c.storm_dropped)
        .uint("rehomed", c.rehomed)
        .uint("removed", c.removed)
        .uint("parked", c.parked)
        .uint("pump_ticks", c.pump_ticks)
        .uint("resumed", c.resumed)
        .uint("incumbent_handoffs", c.incumbent_handoffs)
        .uint("greedy_installs", c.greedy_installs)
        .uint("deferred_replans", c.deferred_replans)
        .uint("final_admitted", d.final_admitted)
        .f64("final_objective", d.final_objective)
        .bool("deployment_valid", d.deployment_valid)
        .uint("nodes_total", c.nodes_total)
        .uint("lp_iterations", c.lp_iterations)
        .uint("cache_patches", c.cache_patches)
        .uint("cache_rebuilds", c.cache_rebuilds)
        .uint("cache_refix_patches", c.cache_refix_patches)
        .f64("cache_patch_rate", patch_rate)
        .uint_arr("threads_checked", &[1, 0])
        .bool("warm_cold_agreement", true)
        .render()
}

/// Runs one scenario *file* end to end against its golden transcript and
/// committed bench JSON.
///
/// - The candidate transcript is always written to
///   `out_dir/<name>.txt` (CI uploads this directory as the diff
///   artifact on failure).
/// - With `SQPR_BLESS=1` the golden transcript and the bench JSON are
///   (re)written instead of compared.
pub fn check_scenario_file(
    path: &Path,
    golden_dir: &Path,
    bench_dir: &Path,
    out_dir: &Path,
) -> Result<String, Vec<String>> {
    let src = fs::read_to_string(path)
        .map_err(|e| vec![format!("{}: read failed: {e}", path.display())])?;
    let spec = ScenarioSpec::parse(&src).map_err(|e| vec![format!("{}: {e}", path.display())])?;
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or_default();
    if spec.name != stem {
        return Err(vec![format!(
            "{}: scenario name `{}` must match the file stem `{stem}`",
            path.display(),
            spec.name
        )]);
    }
    let run = run_scenario(&spec).map_err(|errs| {
        errs.into_iter()
            .map(|e| format!("{}: {e}", spec.name))
            .collect::<Vec<_>>()
    })?;

    let _ = fs::create_dir_all(out_dir);
    let candidate = out_dir.join(format!("{}.txt", run.name));
    let _ = fs::write(&candidate, &run.transcript);

    // sqpr::allow(ambient-nondeterminism): SQPR_BLESS is the operator's explicit golden-regeneration switch; it gates which files are written, never what the planner computes
    let bless = std::env::var("SQPR_BLESS").is_ok_and(|v| v == "1");
    let golden_path = golden_dir.join(format!("{}.txt", run.name));
    let bench_path = bench_dir.join(format!("BENCH_scenario_{}.json", run.name));
    let mut errors = Vec::new();
    if bless {
        let _ = fs::create_dir_all(golden_dir);
        fs::write(&golden_path, &run.transcript)
            .map_err(|e| vec![format!("{}: bless write failed: {e}", run.name)])?;
        fs::write(&bench_path, &run.bench_json)
            .map_err(|e| vec![format!("{}: bench write failed: {e}", run.name)])?;
    } else {
        match fs::read_to_string(&golden_path) {
            Err(_) => errors.push(format!(
                "{}: golden transcript {} missing (run with SQPR_BLESS=1 to create)",
                run.name,
                golden_path.display()
            )),
            Ok(golden) => {
                if let Some(diff) = first_diff(&golden, &run.transcript) {
                    errors.push(format!(
                        "{}: transcript drifted from golden (candidate at {}) — {diff}",
                        run.name,
                        candidate.display()
                    ));
                }
            }
        }
        // The quantum fuzz matrix (CI `deadline-fuzz`) runs this check
        // lenient: suspending a tree clears the cache slot's detached
        // factor store, so the *next* construction's cross-solve factor
        // warm start — a pure iteration-count heuristic — sees different
        // factors than in an unsliced run. Decisions, tree sizes and
        // objective bits are all in the transcript and stay strict.
        // sqpr::allow(ambient-nondeterminism): explicit operator switch relaxing bench *comparison* strictness; planner outputs are unaffected
        let lenient_bench = std::env::var("SQPR_SCENARIO_LENIENT_BENCH").is_ok_and(|v| v == "1");
        match fs::read_to_string(&bench_path) {
            Err(_) => errors.push(format!(
                "{}: committed bench file {} missing (run with SQPR_BLESS=1 to create)",
                run.name,
                bench_path.display()
            )),
            Ok(committed) => {
                if committed != run.bench_json && !lenient_bench {
                    errors.push(format!(
                        "{}: bench JSON drifted from committed {}",
                        run.name,
                        bench_path.display()
                    ));
                }
            }
        }
    }
    if errors.is_empty() {
        Ok(run.name)
    } else {
        Err(errors)
    }
}

/// Lists the corpus scenario files (`*.toml`, sorted by name).
pub fn discover(dir: &Path) -> std::io::Result<Vec<std::path::PathBuf>> {
    let mut files: Vec<_> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    files.sort();
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny but complete scenario exercising submit, drift, failure and
    /// retry against the §V-B cluster preset. Kept deliberately small so
    /// the three-way drive stays fast as a unit test.
    const SMOKE: &str = r#"
        name = "smoke"
        [system]
        kind = "paper_cluster"
        scale = 0.2
        queries = 6
        max_nodes = 60
        [[event]]
        kind = "submit"
        count = 4
        [[event]]
        kind = "drift"
        profile = "step"
        factor = 1.6
        t = 1.0
        threshold = 0.3
        [[event]]
        kind = "fail_hosts"
        hosts = [1]
        [[event]]
        kind = "recover"
        max_nodes = 120
        [[event]]
        kind = "restore_hosts"
        hosts = [1]
        [[event]]
        kind = "submit"
        count = 2
        [[event]]
        kind = "retry"
        [expect]
        min_admitted = 3
    "#;

    #[test]
    fn three_way_drive_agrees_on_a_smoke_scenario() {
        let spec = ScenarioSpec::parse(SMOKE).unwrap();
        let run = run_scenario(&spec).unwrap_or_else(|e| panic!("{}", e.join("\n")));
        assert!(run.transcript.starts_with("scenario smoke\n"));
        assert!(run.transcript.contains("recover displaced="));
        assert!(run.transcript.ends_with("\n"));
        assert!(run.bench_json.contains("\"bench\": \"scenario_smoke\""));
        assert!(run.bench_json.contains("\"storms\": 1"));
    }

    #[test]
    fn drives_are_reproducible() {
        let spec = ScenarioSpec::parse(SMOKE).unwrap();
        let a = drive(&spec, true, 1);
        let b = drive(&spec, true, 1);
        assert_eq!(a.transcript.render(), b.transcript.render());
        assert_eq!(a.final_objective.to_bits(), b.final_objective.to_bits());
    }

    #[test]
    fn expectation_failures_are_reported_not_panicked() {
        let mut spec = ScenarioSpec::parse(SMOKE).unwrap();
        spec.expect.min_admitted = Some(1000);
        spec.expect.admits = Some("R".repeat(6));
        let errs = run_scenario(&spec).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("below floor 1000")),
            "{errs:?}"
        );
        assert!(
            errs.iter().any(|e| e.contains("admit sequence")),
            "{errs:?}"
        );
    }

    #[test]
    fn transcripts_embed_objective_bits() {
        let spec = ScenarioSpec::parse(SMOKE).unwrap();
        let d = drive(&spec, true, 1);
        let final_line = d.transcript.lines().last().unwrap().clone();
        let bits = final_line
            .split("objective=")
            .nth(1)
            .and_then(|s| s.split('/').nth(1))
            .and_then(|s| s.split(' ').next())
            .unwrap();
        assert_eq!(
            u64::from_str_radix(bits, 16).unwrap(),
            d.final_objective.to_bits()
        );
    }
}
