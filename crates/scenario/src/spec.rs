//! Typed scenario specifications, decoded from the TOML-subset tree.
//!
//! A scenario file has three sections:
//!
//! - `[system]` — which generated system/workload to build (the paper's
//!   §V-A simulation or §V-B cluster presets, scaled, optionally with an
//!   explicit heterogeneous `[[system.host]]` list) and the deterministic
//!   node budget every solve runs under;
//! - `[[event]]` — the timed script: query arrivals, observed-rate drift
//!   (through the metrics feedback loop or directly into §IV-B
//!   adaptation), host/link failures and restores, recovery storms, query
//!   removals and admission retries;
//! - `[expect]` — scenario-level expectations checked on the canonical
//!   run, over and above the golden transcript diff.

use std::fmt;

use sqpr_workload::{DriftSpec, RateProfile};

use crate::toml::{self, Value};

/// A scenario file failed to decode.
#[derive(Debug, Clone)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn bad(msg: impl Into<String>) -> SpecError {
    SpecError(msg.into())
}

/// Which workload generator preset seeds the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// `WorkloadSpec::paper_sim(scale)` — §V-A simulation defaults.
    PaperSim,
    /// `WorkloadSpec::paper_cluster(scale)` — §V-B cluster defaults.
    PaperCluster,
}

/// An explicit host class for heterogeneous clusters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostClass {
    pub count: usize,
    pub cpu: f64,
    pub bandwidth: f64,
}

/// The `[system]` section.
#[derive(Debug, Clone)]
pub struct SystemSpec {
    pub kind: SystemKind,
    pub scale: f64,
    /// Workload seed override (`None` keeps the preset's seed).
    pub seed: Option<u64>,
    /// Query-count override.
    pub queries: Option<usize>,
    /// Zipf skew override (duplicate-heavy scenarios raise it).
    pub zipf_theta: Option<f64>,
    /// Per-submission node budget (`SolveBudget::nodes`) — node-only, so
    /// every run of the scenario is a pure function of the script.
    pub max_nodes: usize,
    /// Preemption quantum override (`PlannerConfig::node_quantum`).
    /// `None` keeps the planner default (which honours the
    /// `SQPR_NODE_QUANTUM` environment variable — the CI fuzz matrix);
    /// deadline scenarios pin it explicitly so their goldens are stable
    /// under that matrix.
    pub node_quantum: Option<usize>,
    /// Node-count deadline per submission round
    /// (`PlannerConfig::round_deadline`). Setting it puts the scenario in
    /// *deadline mode*: submissions route through the [`AdmissionQueue`]
    /// and preempted rounds park until `pump`/`drain` events resolve them.
    /// Requires an explicit `node_quantum >= 1`.
    ///
    /// [`AdmissionQueue`]: sqpr_core::AdmissionQueue
    pub round_deadline: Option<usize>,
    /// Heterogeneous host classes; empty means the preset's uniform hosts.
    pub hosts: Vec<HostClass>,
}

/// One scripted event, applied in file order.
#[derive(Debug, Clone)]
pub enum Event {
    /// Submit the next `count` workload queries one at a time. An optional
    /// `min_patch_rate` floors the compressed-LP cache patch rate
    /// aggregated over this event's solver rounds.
    Submit {
        count: usize,
        min_patch_rate: Option<f64>,
    },
    /// Feed measured rate samples into the drift monitor (the metrics
    /// feedback path): `samples` draws at rounds `t, t + tick, …` for each
    /// selected base stream (all bases when `streams` is empty).
    Observe {
        drift: DriftSpec,
        t: f64,
        samples: usize,
        tick: f64,
        streams: Vec<usize>,
    },
    /// Ask the monitor for an adaptation round at this drift threshold.
    Adapt { threshold: f64 },
    /// Bypass the monitor: evaluate the drift profile at round `t` and
    /// push the observed rates straight through §IV-B adaptation.
    Drift {
        drift: DriftSpec,
        t: f64,
        threshold: f64,
        streams: Vec<usize>,
    },
    /// Fail the listed hosts (indices into the generated host list).
    FailHosts { hosts: Vec<usize> },
    /// Restore the listed hosts to nominal capacity.
    RestoreHosts { hosts: Vec<usize> },
    /// Degrade the directed link `from -> to` to `capacity`.
    DegradeLink {
        from: usize,
        to: usize,
        capacity: f64,
    },
    /// Restore the directed link `from -> to` to its configured capacity.
    RestoreLink { from: usize, to: usize },
    /// Run a recovery storm over the current fault set under a node-only
    /// storm budget.
    Recover { max_nodes: usize },
    /// Remove the listed queries (by submission index).
    Remove { queries: Vec<u32> },
    /// Retry admission (warm re-plan) for currently rejected queries, in
    /// ascending id order, at most `max` of them (`None` = all).
    Retry {
        max: Option<usize>,
        min_patch_rate: Option<f64>,
    },
    /// Advance the admission queue by `ticks` logical ticks: each tick
    /// resumes every eligible parked round in park order under another
    /// `round_deadline` node grant (deadline mode only; a no-op when
    /// nothing is parked).
    Pump { ticks: usize },
    /// Quiet period: force every parked round to a terminal verdict via
    /// one unbounded resume each. After `drain` the queue is empty — the
    /// zero-silent-drops guarantee.
    Drain,
}

/// The `[expect]` section.
#[derive(Debug, Clone)]
pub struct Expectations {
    /// Exact admit/reject sequence over `submit` events, one `A`/`R` per
    /// submission in arrival order.
    pub admits: Option<String>,
    /// Floor on the final admitted-query count.
    pub min_admitted: Option<usize>,
    /// Every adaptation round and recovery storm must account for all its
    /// queries with zero drops (default `true`).
    pub zero_dropped: bool,
    /// Floor on the total number of queries selected for re-planning
    /// across all adaptation rounds.
    pub min_replanned: Option<usize>,
    /// Floor on the final admitted fraction of submitted queries.
    pub min_admit_fraction: Option<f64>,
}

impl Default for Expectations {
    fn default() -> Self {
        Expectations {
            admits: None,
            min_admitted: None,
            zero_dropped: true,
            min_replanned: None,
            min_admit_fraction: None,
        }
    }
}

/// A fully decoded scenario.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    pub name: String,
    pub system: SystemSpec,
    pub events: Vec<Event>,
    pub expect: Expectations,
}

impl ScenarioSpec {
    /// Decodes a scenario from TOML-subset source.
    pub fn parse(src: &str) -> Result<ScenarioSpec, SpecError> {
        let root = toml::parse(src).map_err(|e| bad(format!("toml: {e}")))?;
        let name = req_str(&root, "name")?;
        let system = parse_system(
            root.get("system")
                .and_then(Value::as_table)
                .ok_or_else(|| bad("missing [system] table"))?,
        )?;
        let mut events = Vec::new();
        for (i, ev) in root
            .get("event")
            .and_then(Value::as_table_arr)
            .ok_or_else(|| bad("missing [[event]] list"))?
            .iter()
            .enumerate()
        {
            events.push(parse_event(ev).map_err(|e| bad(format!("event #{}: {}", i + 1, e.0)))?);
        }
        if events.is_empty() {
            return Err(bad("scenario has no events"));
        }
        let expect = match root.get("expect") {
            None => Expectations::default(),
            Some(v) => parse_expect(
                v.as_table()
                    .ok_or_else(|| bad("[expect] must be a table"))?,
            )?,
        };
        Ok(ScenarioSpec {
            name,
            system,
            events,
            expect,
        })
    }
}

type Table = std::collections::BTreeMap<String, Value>;

fn req_str(t: &Table, key: &str) -> Result<String, SpecError> {
    t.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| bad(format!("missing string `{key}`")))
}

fn opt_f64(t: &Table, key: &str) -> Result<Option<f64>, SpecError> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| bad(format!("`{key}` must be a number"))),
    }
}

fn f64_or(t: &Table, key: &str, default: f64) -> Result<f64, SpecError> {
    Ok(opt_f64(t, key)?.unwrap_or(default))
}

fn req_f64(t: &Table, key: &str) -> Result<f64, SpecError> {
    opt_f64(t, key)?.ok_or_else(|| bad(format!("missing number `{key}`")))
}

fn opt_usize(t: &Table, key: &str) -> Result<Option<usize>, SpecError> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_usize()
            .map(Some)
            .ok_or_else(|| bad(format!("`{key}` must be a non-negative integer"))),
    }
}

fn usize_or(t: &Table, key: &str, default: usize) -> Result<usize, SpecError> {
    Ok(opt_usize(t, key)?.unwrap_or(default))
}

fn req_usize(t: &Table, key: &str) -> Result<usize, SpecError> {
    opt_usize(t, key)?.ok_or_else(|| bad(format!("missing integer `{key}`")))
}

fn index_list(t: &Table, key: &str) -> Result<Vec<usize>, SpecError> {
    match t.get(key) {
        None => Ok(Vec::new()),
        Some(v) => v
            .as_arr()
            .ok_or_else(|| bad(format!("`{key}` must be an array")))?
            .iter()
            .map(|x| {
                x.as_usize()
                    .ok_or_else(|| bad(format!("`{key}` entries must be non-negative integers")))
            })
            .collect(),
    }
}

fn parse_system(t: &Table) -> Result<SystemSpec, SpecError> {
    let kind = match req_str(t, "kind")?.as_str() {
        "paper_sim" => SystemKind::PaperSim,
        "paper_cluster" => SystemKind::PaperCluster,
        other => return Err(bad(format!("unknown system kind `{other}`"))),
    };
    let scale = f64_or(t, "scale", 0.1)?;
    if !(scale > 0.0 && scale <= 1.0) {
        return Err(bad(format!("scale {scale} outside (0, 1]")));
    }
    let mut hosts = Vec::new();
    if let Some(list) = t.get("host") {
        for h in list
            .as_table_arr()
            .ok_or_else(|| bad("[[system.host]] must be an array of tables"))?
        {
            hosts.push(HostClass {
                count: usize_or(h, "count", 1)?,
                cpu: req_f64(h, "cpu")?,
                bandwidth: req_f64(h, "bandwidth")?,
            });
        }
        if hosts.iter().map(|h| h.count).sum::<usize>() == 0 {
            return Err(bad("[[system.host]] classes sum to zero hosts"));
        }
    }
    let node_quantum = opt_usize(t, "node_quantum")?;
    let round_deadline = opt_usize(t, "round_deadline")?;
    if let Some(d) = round_deadline {
        if d == 0 {
            return Err(bad("`round_deadline` must be at least 1"));
        }
        if node_quantum.is_none_or(|q| q < 1) {
            return Err(bad(
                "`round_deadline` requires an explicit `node_quantum` >= 1",
            ));
        }
    }
    Ok(SystemSpec {
        kind,
        scale,
        seed: t
            .get("seed")
            .map(|v| {
                v.as_u64()
                    .ok_or_else(|| bad("`seed` must be a non-negative integer"))
            })
            .transpose()?,
        queries: opt_usize(t, "queries")?,
        zipf_theta: opt_f64(t, "zipf_theta")?,
        max_nodes: usize_or(t, "max_nodes", 200)?,
        node_quantum,
        round_deadline,
        hosts,
    })
}

fn parse_profile(t: &Table) -> Result<RateProfile, SpecError> {
    match req_str(t, "profile")?.as_str() {
        "diurnal" => Ok(RateProfile::Diurnal {
            amplitude: req_f64(t, "amplitude")?,
            period: req_f64(t, "period")?,
            phase: f64_or(t, "phase", 0.0)?,
        }),
        "burst" => Ok(RateProfile::Burst {
            factor: req_f64(t, "factor")?,
        }),
        "step" => Ok(RateProfile::Step {
            factor: req_f64(t, "factor")?,
        }),
        other => Err(bad(format!("unknown profile `{other}`"))),
    }
}

fn parse_drift(t: &Table) -> Result<DriftSpec, SpecError> {
    Ok(DriftSpec {
        profile: parse_profile(t)?,
        jitter: f64_or(t, "jitter", 0.0)?,
        seed: t
            .get("seed")
            .map(|v| {
                v.as_u64()
                    .ok_or_else(|| bad("`seed` must be a non-negative integer"))
            })
            .transpose()?
            .unwrap_or(0),
    })
}

fn parse_event(t: &Table) -> Result<Event, SpecError> {
    let kind = req_str(t, "kind")?;
    match kind.as_str() {
        "submit" => Ok(Event::Submit {
            count: req_usize(t, "count")?,
            min_patch_rate: opt_f64(t, "min_patch_rate")?,
        }),
        "observe" => Ok(Event::Observe {
            drift: parse_drift(t)?,
            t: req_f64(t, "t")?,
            samples: usize_or(t, "samples", 1)?,
            tick: f64_or(t, "tick", 0.25)?,
            streams: index_list(t, "streams")?,
        }),
        "adapt" => Ok(Event::Adapt {
            threshold: req_f64(t, "threshold")?,
        }),
        "drift" => Ok(Event::Drift {
            drift: parse_drift(t)?,
            t: req_f64(t, "t")?,
            threshold: req_f64(t, "threshold")?,
            streams: index_list(t, "streams")?,
        }),
        "fail_hosts" => Ok(Event::FailHosts {
            hosts: index_list(t, "hosts")?,
        }),
        "restore_hosts" => Ok(Event::RestoreHosts {
            hosts: index_list(t, "hosts")?,
        }),
        "degrade_link" => Ok(Event::DegradeLink {
            from: req_usize(t, "from")?,
            to: req_usize(t, "to")?,
            capacity: req_f64(t, "capacity")?,
        }),
        "restore_link" => Ok(Event::RestoreLink {
            from: req_usize(t, "from")?,
            to: req_usize(t, "to")?,
        }),
        "recover" => Ok(Event::Recover {
            max_nodes: usize_or(t, "max_nodes", 400)?,
        }),
        "remove" => {
            let queries = index_list(t, "queries")?;
            if queries.is_empty() {
                return Err(bad("`remove` needs a non-empty `queries` list"));
            }
            Ok(Event::Remove {
                queries: queries.into_iter().map(|q| q as u32).collect(),
            })
        }
        "retry" => Ok(Event::Retry {
            max: opt_usize(t, "max")?,
            min_patch_rate: opt_f64(t, "min_patch_rate")?,
        }),
        "pump" => {
            let ticks = usize_or(t, "ticks", 1)?;
            if ticks == 0 {
                return Err(bad("`pump` needs `ticks` >= 1"));
            }
            Ok(Event::Pump { ticks })
        }
        "drain" => Ok(Event::Drain),
        other => Err(bad(format!("unknown event kind `{other}`"))),
    }
}

fn parse_expect(t: &Table) -> Result<Expectations, SpecError> {
    let mut e = Expectations::default();
    if let Some(v) = t.get("admits") {
        let s = v
            .as_str()
            .ok_or_else(|| bad("`admits` must be a string of A/R"))?;
        if !s.chars().all(|c| c == 'A' || c == 'R') {
            return Err(bad(format!("`admits` may only contain A/R, got `{s}`")));
        }
        e.admits = Some(s.to_string());
    }
    e.min_admitted = opt_usize(t, "min_admitted")?;
    if let Some(v) = t.get("zero_dropped") {
        e.zero_dropped = v
            .as_bool()
            .ok_or_else(|| bad("`zero_dropped` must be a boolean"))?;
    }
    e.min_replanned = opt_usize(t, "min_replanned")?;
    e.min_admit_fraction = opt_f64(t, "min_admit_fraction")?;
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        name = "sample"

        [system]
        kind = "paper_cluster"
        scale = 0.2
        seed = 9
        queries = 12
        max_nodes = 150

        [[system.host]]
        count = 2
        cpu = 1.2
        bandwidth = 20.0

        [[system.host]]
        count = 3
        cpu = 0.3
        bandwidth = 5.0

        [[event]]
        kind = "submit"
        count = 6

        [[event]]
        kind = "observe"
        profile = "diurnal"
        amplitude = 0.8
        period = 8.0
        t = 2.0
        samples = 3
        streams = [0, 1, 4]

        [[event]]
        kind = "adapt"
        threshold = 0.25

        [[event]]
        kind = "fail_hosts"
        hosts = [1]

        [[event]]
        kind = "recover"
        max_nodes = 300

        [[event]]
        kind = "restore_hosts"
        hosts = [1]

        [[event]]
        kind = "retry"

        [expect]
        admits = "AARARA"
        min_admitted = 4
        min_replanned = 1
    "#;

    #[test]
    fn decodes_a_full_scenario() {
        let spec = ScenarioSpec::parse(SAMPLE).unwrap();
        assert_eq!(spec.name, "sample");
        assert_eq!(spec.system.kind, SystemKind::PaperCluster);
        assert_eq!(spec.system.queries, Some(12));
        assert_eq!(spec.system.max_nodes, 150);
        assert_eq!(spec.system.hosts.len(), 2);
        assert_eq!(spec.system.hosts[1].count, 3);
        assert_eq!(spec.events.len(), 7);
        match &spec.events[1] {
            Event::Observe {
                samples, streams, ..
            } => {
                assert_eq!(*samples, 3);
                assert_eq!(streams, &[0, 1, 4]);
            }
            other => panic!("expected observe, got {other:?}"),
        }
        assert_eq!(spec.expect.admits.as_deref(), Some("AARARA"));
        assert!(spec.expect.zero_dropped, "defaults on");
        assert_eq!(spec.expect.min_replanned, Some(1));
    }

    #[test]
    fn rejects_bad_specs() {
        for (src, needle) in [
            ("[system]\nkind = \"paper_sim\"\n[[event]]\nkind = \"submit\"\ncount = 1", "missing string `name`"),
            ("name = \"x\"\n[[event]]\nkind = \"submit\"\ncount = 1", "missing [system]"),
            ("name = \"x\"\n[system]\nkind = \"nope\"\n[[event]]\nkind = \"submit\"\ncount = 1", "unknown system kind"),
            ("name = \"x\"\n[system]\nkind = \"paper_sim\"\nscale = 1.5\n[[event]]\nkind = \"submit\"\ncount = 1", "outside (0, 1]"),
            ("name = \"x\"\n[system]\nkind = \"paper_sim\"", "missing [[event]]"),
            ("name = \"x\"\n[system]\nkind = \"paper_sim\"\n[[event]]\nkind = \"warp\"", "unknown event kind"),
            ("name = \"x\"\n[system]\nkind = \"paper_sim\"\n[[event]]\nkind = \"submit\"\ncount = 1\n[expect]\nadmits = \"AXR\"", "may only contain A/R"),
            ("name = \"x\"\n[system]\nkind = \"paper_sim\"\n[[event]]\nkind = \"remove\"\nqueries = []", "non-empty"),
            ("name = \"x\"\n[system]\nkind = \"paper_sim\"\nround_deadline = 2\n[[event]]\nkind = \"submit\"\ncount = 1", "requires an explicit `node_quantum`"),
            ("name = \"x\"\n[system]\nkind = \"paper_sim\"\nnode_quantum = 1\nround_deadline = 0\n[[event]]\nkind = \"submit\"\ncount = 1", "must be at least 1"),
            ("name = \"x\"\n[system]\nkind = \"paper_sim\"\n[[event]]\nkind = \"pump\"\nticks = 0", "`ticks` >= 1"),
        ] {
            let e = ScenarioSpec::parse(src).unwrap_err();
            assert!(e.0.contains(needle), "`{src}` -> `{}`", e.0);
        }
    }

    #[test]
    fn decodes_deadline_mode() {
        let src = r#"
            name = "dl"
            [system]
            kind = "paper_cluster"
            scale = 0.2
            node_quantum = 1
            round_deadline = 2
            [[event]]
            kind = "submit"
            count = 3
            [[event]]
            kind = "pump"
            ticks = 4
            [[event]]
            kind = "drain"
        "#;
        let spec = ScenarioSpec::parse(src).unwrap();
        assert_eq!(spec.system.node_quantum, Some(1));
        assert_eq!(spec.system.round_deadline, Some(2));
        assert!(matches!(spec.events[1], Event::Pump { ticks: 4 }));
        assert!(matches!(spec.events[2], Event::Drain));
        // `pump` defaults to one tick.
        let one = src.replace("ticks = 4", "");
        let spec = ScenarioSpec::parse(&one).unwrap();
        assert!(matches!(spec.events[1], Event::Pump { ticks: 1 }));
    }

    #[test]
    fn event_defaults_apply() {
        let src = r#"
            name = "d"
            [system]
            kind = "paper_sim"
            [[event]]
            kind = "observe"
            profile = "burst"
            factor = 3.0
            t = 1.0
            [[event]]
            kind = "recover"
            [[event]]
            kind = "retry"
        "#;
        let spec = ScenarioSpec::parse(src).unwrap();
        assert_eq!(spec.system.max_nodes, 200);
        assert!(spec.system.hosts.is_empty());
        match &spec.events[0] {
            Event::Observe {
                samples,
                tick,
                streams,
                drift,
                ..
            } => {
                assert_eq!(*samples, 1);
                assert_eq!(*tick, 0.25);
                assert!(streams.is_empty());
                assert_eq!(drift.jitter, 0.0);
            }
            other => panic!("{other:?}"),
        }
        match &spec.events[1] {
            Event::Recover { max_nodes } => assert_eq!(*max_nodes, 400),
            other => panic!("{other:?}"),
        }
        match &spec.events[2] {
            Event::Retry {
                max,
                min_patch_rate,
            } => {
                assert!(max.is_none() && min_patch_rate.is_none());
            }
            other => panic!("{other:?}"),
        }
    }
}
