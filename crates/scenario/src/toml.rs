//! A minimal TOML-subset reader for scenario files.
//!
//! The sanctioned dependency set has no `toml` crate, so the corpus
//! defines its own restricted grammar — exactly what scenario files need
//! and nothing more:
//!
//! - `key = value` pairs with bare keys;
//! - values: `"strings"` (with `\"`, `\\`, `\n`, `\t` escapes), booleans,
//!   integers, floats, and flat arrays of those;
//! - `[table.path]` headers and `[[array.of.tables]]` headers;
//! - `#` comments and blank lines.
//!
//! Unsupported TOML (inline tables, multi-line strings, dotted keys,
//! dates) is rejected with a line-numbered error instead of being
//! misparsed — a scenario file that fails to parse must fail loudly, not
//! run a different scenario than its author wrote.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML-subset value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    Arr(Vec<Value>),
    Table(BTreeMap<String, Value>),
    /// An `[[array-of-tables]]` collection.
    TableArr(Vec<BTreeMap<String, Value>>),
}

/// A parse failure, with the 1-based line it happened on.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view: integers widen to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Non-negative integer view (floats are rejected — a count of `2.5`
    /// is a spec bug, not something to round).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Int(v) if *v >= 0 => Some(*v as usize),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_table(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }

    pub fn as_table_arr(&self) -> Option<&[BTreeMap<String, Value>]> {
        match self {
            Value::TableArr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a document into its root table.
pub fn parse(input: &str) -> Result<BTreeMap<String, Value>, ParseError> {
    let mut root: BTreeMap<String, Value> = BTreeMap::new();
    // Path of the table the next `key = value` lands in.
    let mut current: Vec<String> = Vec::new();

    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(inner) = line
            .strip_prefix("[[")
            .and_then(|rest| rest.strip_suffix("]]"))
        {
            let path = split_path(inner, lineno)?;
            push_table_element(&mut root, &path, lineno)?;
            current = path;
        } else if let Some(inner) = line
            .strip_prefix('[')
            .and_then(|rest| rest.strip_suffix(']'))
        {
            let path = split_path(inner, lineno)?;
            ensure_table(&mut root, &path, lineno)?;
            current = path;
        } else if let Some(eq) = line.find('=') {
            let key = line[..eq].trim();
            if key.is_empty() || !is_bare_key(key) {
                return Err(err(lineno, format!("invalid key `{key}`")));
            }
            let value = parse_value(line[eq + 1..].trim(), lineno)?;
            let table = resolve_mut(&mut root, &current, lineno)?;
            if table.insert(key.to_string(), value).is_some() {
                return Err(err(lineno, format!("duplicate key `{key}`")));
            }
        } else {
            return Err(err(lineno, format!("cannot parse `{line}`")));
        }
    }
    Ok(root)
}

fn err(line: usize, message: String) -> ParseError {
    ParseError { line, message }
}

/// Strips a `#` comment, respecting string literals.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (idx, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..idx],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn is_bare_key(key: &str) -> bool {
    !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn split_path(inner: &str, lineno: usize) -> Result<Vec<String>, ParseError> {
    let parts: Vec<String> = inner.split('.').map(|p| p.trim().to_string()).collect();
    if parts.iter().any(|p| !is_bare_key(p)) {
        return Err(err(lineno, format!("invalid table path `{inner}`")));
    }
    Ok(parts)
}

/// Walks/creates the table at `path` (for `[header]` lines).
fn ensure_table(
    root: &mut BTreeMap<String, Value>,
    path: &[String],
    lineno: usize,
) -> Result<(), ParseError> {
    let _ = resolve_mut(root, path, lineno)?;
    Ok(())
}

/// Appends a fresh element to the `[[array-of-tables]]` at `path`.
fn push_table_element(
    root: &mut BTreeMap<String, Value>,
    path: &[String],
    lineno: usize,
) -> Result<(), ParseError> {
    let (last, parents) = path.split_last().expect("paths are non-empty");
    let table = resolve_mut(root, parents, lineno)?;
    match table
        .entry(last.clone())
        .or_insert_with(|| Value::TableArr(Vec::new()))
    {
        Value::TableArr(items) => {
            items.push(BTreeMap::new());
            Ok(())
        }
        _ => Err(err(lineno, format!("`{last}` is not an array of tables"))),
    }
}

/// Resolves `path` to its innermost table, creating intermediate tables.
/// A path segment naming an array of tables resolves to its *last*
/// element (standard TOML semantics for keys under `[[x]]`).
fn resolve_mut<'a>(
    root: &'a mut BTreeMap<String, Value>,
    path: &[String],
    lineno: usize,
) -> Result<&'a mut BTreeMap<String, Value>, ParseError> {
    let mut table = root;
    for part in path {
        let next = table
            .entry(part.clone())
            .or_insert_with(|| Value::Table(BTreeMap::new()));
        table = match next {
            Value::Table(t) => t,
            Value::TableArr(items) => items
                .last_mut()
                .ok_or_else(|| err(lineno, format!("empty table array `{part}`")))?,
            _ => return Err(err(lineno, format!("`{part}` is not a table"))),
        };
    }
    Ok(table)
}

fn parse_value(src: &str, lineno: usize) -> Result<Value, ParseError> {
    let src = src.trim();
    if src.is_empty() {
        return Err(err(lineno, "missing value".into()));
    }
    if let Some(rest) = src.strip_prefix('"') {
        return parse_string(rest, lineno);
    }
    if src.starts_with('[') {
        return parse_array(src, lineno);
    }
    match src {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Ok(v) = src.parse::<i64>() {
        return Ok(Value::Int(v));
    }
    if let Ok(v) = src.parse::<f64>() {
        return Ok(Value::Float(v));
    }
    Err(err(lineno, format!("cannot parse value `{src}`")))
}

fn parse_string(rest: &str, lineno: usize) -> Result<Value, ParseError> {
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                let trailing = chars.as_str().trim();
                if !trailing.is_empty() {
                    return Err(err(lineno, format!("trailing content `{trailing}`")));
                }
                return Ok(Value::Str(out));
            }
            '\\' => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                other => {
                    return Err(err(lineno, format!("unsupported escape `\\{other:?}`")));
                }
            },
            c => out.push(c),
        }
    }
    Err(err(lineno, "unterminated string".into()))
}

fn parse_array(src: &str, lineno: usize) -> Result<Value, ParseError> {
    let inner = src
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err(lineno, "unterminated array".into()))?;
    let mut items = Vec::new();
    for part in split_array_items(inner) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let v = parse_value(part, lineno)?;
        if matches!(v, Value::Arr(_)) {
            return Err(err(lineno, "nested arrays are not supported".into()));
        }
        items.push(v);
    }
    Ok(Value::Arr(items))
}

/// Splits the inside of an array on commas that are not inside strings.
fn split_array_items(inner: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let mut escaped = false;
    for (idx, c) in inner.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            ',' if !in_str => {
                items.push(&inner[start..idx]);
                start = idx + 1;
            }
            _ => {}
        }
        escaped = false;
    }
    items.push(&inner[start..]);
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_tables() {
        let doc = r#"
            # a scenario
            name = "diurnal"   # trailing comment
            rounds = 4
            scale = 0.07
            strict = true

            [system]
            kind = "paper_sim"
            seed = 7
        "#;
        let root = parse(doc).unwrap();
        assert_eq!(root["name"].as_str(), Some("diurnal"));
        assert_eq!(root["rounds"].as_usize(), Some(4));
        assert_eq!(root["scale"].as_f64(), Some(0.07));
        assert_eq!(root["strict"].as_bool(), Some(true));
        let sys = root["system"].as_table().unwrap();
        assert_eq!(sys["kind"].as_str(), Some("paper_sim"));
        assert_eq!(sys["seed"].as_u64(), Some(7));
    }

    #[test]
    fn parses_arrays_of_tables_in_order() {
        let doc = r#"
            [[event]]
            kind = "submit"
            count = 3

            [[event]]
            kind = "drift"
            amplitude = 0.8

            [[system.host]]
            cpu = 200.0

            [[system.host]]
            cpu = 50.0
        "#;
        let root = parse(doc).unwrap();
        let events = root["event"].as_table_arr().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0]["kind"].as_str(), Some("submit"));
        assert_eq!(events[1]["amplitude"].as_f64(), Some(0.8));
        let hosts = root["system"].as_table().unwrap()["host"]
            .as_table_arr()
            .unwrap();
        assert_eq!(hosts.len(), 2);
        assert_eq!(hosts[0]["cpu"].as_f64(), Some(200.0));
        assert_eq!(hosts[1]["cpu"].as_f64(), Some(50.0));
    }

    #[test]
    fn parses_flat_arrays_and_strings_with_escapes() {
        let doc = r#"
            queries = [0, 2, 5]
            weights = [1.0, 0.5]
            admits = "AR\"A\n"
            tags = ["a, b", "c"]
        "#;
        let root = parse(doc).unwrap();
        assert_eq!(
            root["queries"].as_arr().unwrap(),
            &[Value::Int(0), Value::Int(2), Value::Int(5)]
        );
        assert_eq!(root["admits"].as_str(), Some("AR\"A\n"));
        let tags = root["tags"].as_arr().unwrap();
        assert_eq!(tags[0].as_str(), Some("a, b"), "comma inside a string");
        assert_eq!(tags.len(), 2);
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let root = parse("name = \"a # b\"").unwrap();
        assert_eq!(root["name"].as_str(), Some("a # b"));
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        for (doc, needle) in [
            ("key value", "cannot parse"),
            ("k = ", "missing value"),
            ("k = \"open", "unterminated string"),
            ("k = [1, [2]]", "nested arrays"),
            ("k = 2020-01-01", "cannot parse value"),
            ("k.q = 1", "invalid key"),
            ("k = 1\nk = 2", "duplicate key"),
        ] {
            let e = parse(doc).unwrap_err();
            assert!(
                e.message.contains(needle),
                "`{doc}` -> `{}` (wanted `{needle}`)",
                e.message
            );
        }
        let e = parse("ok = 1\nbroken line").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn array_of_tables_conflicts_are_rejected() {
        assert!(parse("[x]\nk = 1\n[[x]]\n").is_err());
        assert!(parse("x = 1\n[x]\n").is_err());
    }

    #[test]
    fn counts_must_be_integers() {
        let root = parse("n = 2.5").unwrap();
        assert_eq!(root["n"].as_usize(), None);
        assert_eq!(root["n"].as_f64(), Some(2.5));
    }
}
