//! Canonical verdict transcripts and the bench-JSON emitter.
//!
//! A transcript is the scenario's observable behaviour, one line per
//! scripted step plus a state line after each event. Everything in it is
//! deterministic — node counts, admit/reject decisions, objective *bits*
//! — and nothing in it is timing, so byte-equality across reruns, thread
//! counts and machines is exactly the reproducibility claim the corpus
//! asserts. Objectives are printed with their IEEE-754 bit pattern
//! (`value/hex`) so "bit-identical" is literal, not a rounding artefact.

use std::fmt::Write as _;

/// Formats an objective (or any score) as `value/bits`.
pub fn fmt_f64_bits(x: f64) -> String {
    format!("{:.6}/{:016x}", x, x.to_bits())
}

/// An accumulating verdict transcript.
#[derive(Debug, Clone, Default)]
pub struct Transcript {
    lines: Vec<String>,
}

impl Transcript {
    pub fn push(&mut self, line: impl Into<String>) {
        self.lines.push(line.into());
    }

    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// The canonical rendering: newline-joined with a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }
}

/// Human-readable first divergence between two transcripts (`None` when
/// byte-equal). Used both for golden diffs and for the thread-identity
/// assertion, so a failure says *which step* diverged, not just "differs".
pub fn first_diff(expected: &str, actual: &str) -> Option<String> {
    if expected == actual {
        return None;
    }
    let e: Vec<&str> = expected.lines().collect();
    let a: Vec<&str> = actual.lines().collect();
    for i in 0..e.len().max(a.len()) {
        let el = e.get(i).copied();
        let al = a.get(i).copied();
        if el != al {
            return Some(format!(
                "line {}:\n  expected: {}\n  actual:   {}",
                i + 1,
                el.unwrap_or("<end of transcript>"),
                al.unwrap_or("<end of transcript>"),
            ));
        }
    }
    Some("transcripts differ only in trailing whitespace".to_string())
}

/// A minimal ordered JSON object writer for the per-scenario bench files.
/// (The sanctioned dependency set has no serde; the bench harness keeps
/// its own equivalent — this one lives here so `sqpr-scenario` does not
/// depend on `sqpr-bench`.)
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    pub fn new() -> Self {
        JsonObject::default()
    }

    pub fn str(mut self, key: &str, v: &str) -> Self {
        self.fields.push((key.to_string(), json_string(v)));
        self
    }

    pub fn uint(mut self, key: &str, v: usize) -> Self {
        self.fields.push((key.to_string(), v.to_string()));
        self
    }

    pub fn bool(mut self, key: &str, v: bool) -> Self {
        self.fields.push((key.to_string(), v.to_string()));
        self
    }

    /// `f64` via Rust's shortest-round-trip `Display` — deterministic and
    /// parseable back to the same bits. Non-finite values become `null`.
    pub fn f64(mut self, key: &str, v: f64) -> Self {
        let rendered = if v.is_finite() {
            let s = format!("{v}");
            // Bare integers like `3` are valid JSON numbers already, but
            // keep floats visibly floats for downstream tooling.
            if s.contains('.') || s.contains('e') || s.contains('E') {
                s
            } else {
                format!("{s}.0")
            }
        } else {
            "null".to_string()
        };
        self.fields.push((key.to_string(), rendered));
        self
    }

    pub fn uint_arr(mut self, key: &str, vs: &[usize]) -> Self {
        let inner: Vec<String> = vs.iter().map(|v| v.to_string()).collect();
        self.fields
            .push((key.to_string(), format!("[{}]", inner.join(", "))));
        self
    }

    /// Renders the object with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            let comma = if i + 1 == self.fields.len() { "" } else { "," };
            let _ = writeln!(out, "  {}: {}{}", json_string(k), v, comma);
        }
        out.push_str("}\n");
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transcript_renders_with_trailing_newline() {
        let mut t = Transcript::default();
        t.push("scenario x");
        t.push("final admitted=1/1");
        assert_eq!(t.render(), "scenario x\nfinal admitted=1/1\n");
    }

    #[test]
    fn f64_bits_round_trip_the_bit_pattern() {
        let x = 123.456789_f64;
        let s = fmt_f64_bits(x);
        let bits = s.split('/').nth(1).unwrap();
        assert_eq!(u64::from_str_radix(bits, 16).unwrap(), x.to_bits());
    }

    #[test]
    fn first_diff_pinpoints_the_line() {
        assert!(first_diff("a\nb\n", "a\nb\n").is_none());
        let d = first_diff("a\nb\nc\n", "a\nX\nc\n").unwrap();
        assert!(d.contains("line 2"), "{d}");
        assert!(
            d.contains("expected: b") && d.contains("actual:   X"),
            "{d}"
        );
        let d = first_diff("a\n", "a\nextra\n").unwrap();
        assert!(d.contains("<end of transcript>"), "{d}");
    }

    #[test]
    fn json_object_renders_deterministically() {
        let j = JsonObject::new()
            .str("bench", "scenario_x")
            .uint("submitted", 12)
            .f64("patch_rate", 0.75)
            .f64("objective", 3.0)
            .bool("valid", true)
            .uint_arr("threads", &[1, 0])
            .render();
        assert_eq!(
            j,
            "{\n  \"bench\": \"scenario_x\",\n  \"submitted\": 12,\n  \"patch_rate\": 0.75,\n  \"objective\": 3.0,\n  \"valid\": true,\n  \"threads\": [1, 0]\n}\n"
        );
    }

    #[test]
    fn json_strings_escape_controls() {
        let j = JsonObject::new().str("k", "a\"b\\c\nd").render();
        assert!(j.contains(r#""a\"b\\c\nd""#), "{j}");
    }
}
