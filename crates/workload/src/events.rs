//! Deterministic rate-drift profiles for scenario event scripts.
//!
//! Production streams drift and burst; the scenario corpus replays those
//! trajectories reproducibly. A [`DriftSpec`] turns a nominal per-stream
//! rate into an *observed* rate at a scripted round `t` by applying a
//! shape ([`RateProfile`]) plus seeded multiplicative jitter drawn from
//! the workspace PRNG ([`crate::rng::StdRng`]) — equal `(spec, t)` pairs
//! always yield byte-equal observations, so golden-file verdicts stay
//! stable across machines and reruns.

use crate::rng::{Rng, StdRng};

use sqpr_dsps::StreamId;

/// Multipliers never drop below this floor: the catalog rejects
/// non-positive base rates ([`sqpr_dsps::Catalog::update_base_rate`]).
const MIN_RATE_FACTOR: f64 = 0.05;

/// The shape of a scripted rate trajectory, evaluated at round `t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RateProfile {
    /// Diurnal load curve: `1 + amplitude * sin(2π (t + phase) / period)`.
    /// A day of traffic compressed into `period` scripted rounds.
    Diurnal {
        amplitude: f64,
        period: f64,
        phase: f64,
    },
    /// Flash burst: the rate multiplies by `factor` for the rounds the
    /// event script applies it (the script decides when it ends).
    Burst { factor: f64 },
    /// Permanent level shift to `factor` times nominal.
    Step { factor: f64 },
}

impl RateProfile {
    /// The drift multiplier at scripted round `t` (clamped positive).
    pub fn factor_at(&self, t: f64) -> f64 {
        let raw = match *self {
            RateProfile::Diurnal {
                amplitude,
                period,
                phase,
            } => {
                let p = period.max(1e-9);
                1.0 + amplitude * (std::f64::consts::TAU * (t + phase) / p).sin()
            }
            RateProfile::Burst { factor } | RateProfile::Step { factor } => factor,
        };
        raw.max(MIN_RATE_FACTOR)
    }
}

/// A reproducible drift generator over a fixed set of base streams.
#[derive(Debug, Clone)]
pub struct DriftSpec {
    pub profile: RateProfile,
    /// Relative multiplicative jitter per observation: each observed rate
    /// is scaled by `1 + jitter * u`, `u` uniform in `[-1, 1)`. Zero means
    /// noise-free scripts.
    pub jitter: f64,
    /// PRNG seed; observations are a pure function of `(spec, t)`.
    pub seed: u64,
}

impl DriftSpec {
    /// Observed rates for `nominal = [(stream, nominal_rate)]` at round
    /// `t`: profile factor times nominal, jittered. Deterministic — the
    /// jitter stream is seeded from `(seed, t)`, not shared state, so
    /// scripts may evaluate rounds in any order.
    pub fn observed_rates(&self, nominal: &[(StreamId, f64)], t: f64) -> Vec<(StreamId, f64)> {
        let factor = self.profile.factor_at(t);
        let mut rng = StdRng::seed_from_u64(self.seed ^ t.to_bits().rotate_left(17));
        nominal
            .iter()
            .map(|&(s, rate)| {
                let noise = if self.jitter > 0.0 {
                    1.0 + self.jitter * (2.0 * rng.gen_f64() - 1.0)
                } else {
                    1.0
                };
                (s, (rate * factor * noise).max(rate * MIN_RATE_FACTOR))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nominal() -> Vec<(StreamId, f64)> {
        (0..4).map(|i| (StreamId(i), 10.0)).collect()
    }

    #[test]
    fn diurnal_peaks_and_troughs() {
        let p = RateProfile::Diurnal {
            amplitude: 0.5,
            period: 4.0,
            phase: 0.0,
        };
        assert!((p.factor_at(0.0) - 1.0).abs() < 1e-12);
        assert!(
            (p.factor_at(1.0) - 1.5).abs() < 1e-12,
            "quarter period peak"
        );
        assert!((p.factor_at(3.0) - 0.5).abs() < 1e-12, "trough");
    }

    #[test]
    fn factors_stay_positive() {
        let p = RateProfile::Diurnal {
            amplitude: 5.0,
            period: 2.0,
            phase: 0.0,
        };
        for t in 0..20 {
            assert!(p.factor_at(t as f64 / 3.0) >= MIN_RATE_FACTOR);
        }
        assert_eq!(
            RateProfile::Step { factor: 0.0 }.factor_at(1.0),
            MIN_RATE_FACTOR
        );
    }

    #[test]
    fn observations_deterministic_per_spec_and_round() {
        let spec = DriftSpec {
            profile: RateProfile::Burst { factor: 3.0 },
            jitter: 0.1,
            seed: 42,
        };
        let a = spec.observed_rates(&nominal(), 2.0);
        let b = spec.observed_rates(&nominal(), 2.0);
        assert_eq!(a, b, "same (spec, t) must reproduce exactly");
        let c = spec.observed_rates(&nominal(), 3.0);
        assert_ne!(a, c, "different rounds draw different jitter");
        assert!(a.iter().all(|&(_, r)| (24.0..=36.0).contains(&r)));
    }

    #[test]
    fn zero_jitter_is_exact() {
        let spec = DriftSpec {
            profile: RateProfile::Step { factor: 2.0 },
            jitter: 0.0,
            seed: 7,
        };
        for (_, r) in spec.observed_rates(&nominal(), 5.0) {
            assert_eq!(r, 20.0);
        }
    }

    #[test]
    fn rates_never_collapse_to_zero() {
        let spec = DriftSpec {
            profile: RateProfile::Step { factor: 0.0 },
            jitter: 0.9,
            seed: 1,
        };
        for (_, r) in spec.observed_rates(&nominal(), 0.0) {
            assert!(r > 0.0);
        }
    }
}
