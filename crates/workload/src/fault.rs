//! Deterministic fault-injection plans for failure-storm experiments.
//!
//! A [`FaultPlan`] is a seeded, reproducible schedule of host failures and
//! link degradations: the same `(spec, seed)` pair always yields the same
//! plan, so storm benches and CI smoke jobs can assert bit-identical
//! recovery decisions across machines, thread counts and reruns. Victims
//! are drawn without replacement from the host set with the workspace's
//! xoshiro256++ generator ([`crate::rng::StdRng`]) — no wall clock, no OS
//! entropy.

use crate::rng::{Rng, StdRng};

use sqpr_dsps::HostId;

/// Parameters of a fault plan.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Number of hosts in the system (victims are drawn from `0..hosts`).
    pub hosts: usize,
    /// Fraction of hosts to fail, in `[0, 1]` (rounded half-up; at least
    /// one host fails whenever the fraction is positive and `hosts > 0`).
    pub fail_fraction: f64,
    /// Fraction of surviving ordered host pairs whose links degrade.
    pub degrade_fraction: f64,
    /// Multiplier applied to a degraded link's capacity, in `[0, 1)`.
    pub degrade_factor: f64,
    /// PRNG seed; the plan is a pure function of the spec and this seed.
    pub seed: u64,
}

impl FaultSpec {
    /// A host-failure-only storm: fail `fail_fraction` of `hosts`.
    pub fn host_storm(hosts: usize, fail_fraction: f64, seed: u64) -> Self {
        FaultSpec {
            hosts,
            fail_fraction,
            degrade_fraction: 0.0,
            degrade_factor: 0.0,
            seed,
        }
    }
}

/// A reproducible fault schedule (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Hosts to fail, in injection order (a random permutation prefix, so
    /// injection order itself is part of the reproducible plan).
    pub failed_hosts: Vec<HostId>,
    /// Links to degrade: `(from, to, factor)` with both endpoints alive.
    pub degraded_links: Vec<(HostId, HostId, f64)>,
    /// The seed the plan was generated from (for report labels).
    pub seed: u64,
}

impl FaultPlan {
    /// Generates the plan for `spec`. Deterministic: equal specs yield
    /// equal plans.
    ///
    /// # Panics
    /// Panics if a fraction lies outside `[0, 1]` or `degrade_factor`
    /// outside `[0, 1)`.
    pub fn generate(spec: &FaultSpec) -> FaultPlan {
        assert!(
            (0.0..=1.0).contains(&spec.fail_fraction),
            "fail_fraction outside [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&spec.degrade_fraction),
            "degrade_fraction outside [0, 1]"
        );
        assert!(
            (0.0..1.0).contains(&spec.degrade_factor) || spec.degrade_fraction == 0.0,
            "degrade_factor outside [0, 1)"
        );
        let mut rng = StdRng::seed_from_u64(spec.seed);

        // Partial Fisher-Yates: the first `nfail` slots of a seeded
        // permutation of the host ids.
        let mut pool: Vec<HostId> = (0..spec.hosts).map(HostId::from_index).collect();
        let nfail = if spec.fail_fraction > 0.0 && spec.hosts > 0 {
            (((spec.hosts as f64) * spec.fail_fraction).round() as usize).clamp(1, spec.hosts)
        } else {
            0
        };
        for i in 0..nfail {
            let j = i + rng.gen_index(pool.len() - i);
            pool.swap(i, j);
        }
        let failed_hosts: Vec<HostId> = pool[..nfail].to_vec();
        let survivors: Vec<HostId> = {
            let mut rest = pool[nfail..].to_vec();
            rest.sort();
            rest
        };

        // Degrade a sample of ordered survivor pairs (skip self-links).
        let mut degraded_links = Vec::new();
        if spec.degrade_fraction > 0.0 && survivors.len() > 1 {
            for &a in &survivors {
                for &b in &survivors {
                    if a != b && rng.gen_f64() < spec.degrade_fraction {
                        degraded_links.push((a, b, spec.degrade_factor));
                    }
                }
            }
        }

        FaultPlan {
            failed_hosts,
            degraded_links,
            seed: spec.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let spec = FaultSpec {
            hosts: 20,
            fail_fraction: 0.2,
            degrade_fraction: 0.1,
            degrade_factor: 0.5,
            seed: 99,
        };
        assert_eq!(FaultPlan::generate(&spec), FaultPlan::generate(&spec));
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            FaultPlan::generate(&FaultSpec {
                hosts: 50,
                fail_fraction: 0.3,
                degrade_fraction: 0.0,
                degrade_factor: 0.0,
                seed,
            })
        };
        assert_ne!(mk(1).failed_hosts, mk(2).failed_hosts);
    }

    #[test]
    fn victim_count_and_uniqueness() {
        let plan = FaultPlan::generate(&FaultSpec::host_storm(10, 0.2, 7));
        assert_eq!(plan.failed_hosts.len(), 2);
        let mut dedup = plan.failed_hosts.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 2);
        assert!(plan.failed_hosts.iter().all(|h| h.index() < 10));
        assert!(plan.degraded_links.is_empty());
    }

    #[test]
    fn positive_fraction_fails_at_least_one_host() {
        let plan = FaultPlan::generate(&FaultSpec::host_storm(10, 0.01, 3));
        assert_eq!(plan.failed_hosts.len(), 1);
    }

    #[test]
    fn degraded_links_avoid_failed_endpoints() {
        let plan = FaultPlan::generate(&FaultSpec {
            hosts: 12,
            fail_fraction: 0.25,
            degrade_fraction: 0.5,
            degrade_factor: 0.25,
            seed: 11,
        });
        assert!(!plan.degraded_links.is_empty());
        for &(a, b, f) in &plan.degraded_links {
            assert!(a != b);
            assert!(!plan.failed_hosts.contains(&a));
            assert!(!plan.failed_hosts.contains(&b));
            assert_eq!(f, 0.25);
        }
    }
}
