//! Query workload generation (paper §V).
//!
//! "We randomly create 1,000 queries that consist in equal parts of
//! two-way, three-way and four-way joins over the base streams. Joins have
//! a selectivity in the range of 0.1%–0.5%. The base streams in a query are
//! chosen according to a Zipfian distribution with parameter 1."

use crate::rng::{Rng, StdRng};

use sqpr_dsps::{Catalog, CostModel, HostId, HostSpec, NetworkTopology, StreamId};

use crate::zipf::Zipf;

/// Parameters of one generated system + workload.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    pub hosts: usize,
    pub base_streams: usize,
    /// Average base stream rate (e.g. Mbps).
    pub base_rate: f64,
    /// Per-host CPU capacity.
    pub cpu_capacity: f64,
    /// Per-host in/out bandwidth.
    pub host_bandwidth: f64,
    /// Pairwise link capacity.
    pub link_capacity: f64,
    /// Join arities and their mixing weights.
    pub arities: Vec<(usize, f64)>,
    /// Zipf skew for base-stream choice (paper: 1.0).
    pub zipf_theta: f64,
    /// Pairwise selectivity range (paper: 0.001–0.005).
    pub selectivity: (f64, f64),
    /// Number of queries to generate.
    pub queries: usize,
    pub seed: u64,
}

impl WorkloadSpec {
    /// The §V-A simulation defaults, scaled by `scale` in `(0, 1]`:
    /// 50 hosts, 500 base streams of 10 Mbps, 1 Gbps links, equal-part
    /// 2/3/4-way joins, Zipf(1), 1000 queries.
    ///
    /// CPU capacity is set to make the environment jointly CPU- and
    /// bandwidth-constrained, as the paper tunes it.
    pub fn paper_sim(scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0);
        let hosts = ((50.0 * scale).round() as usize).max(3);
        let base_streams = ((500.0 * scale).round() as usize).max(6);
        let queries = ((1000.0 * scale).round() as usize).max(10);
        WorkloadSpec {
            hosts,
            base_streams,
            base_rate: 10.0,
            // ~8 joins of two 10 Mbps streams per host before saturation.
            cpu_capacity: 160.0,
            host_bandwidth: 1000.0,
            link_capacity: 1000.0,
            arities: vec![(2, 1.0), (3, 1.0), (4, 1.0)],
            zipf_theta: 1.0,
            selectivity: (0.001, 0.005),
            queries,
            seed: 0x5095,
        }
    }

    /// The §V-B cluster defaults, scaled: 15 hosts on a 10 Mbps LAN, 300
    /// base streams with 10 Kbps rates, 2- and 3-way joins, ~15 joins per
    /// host before CPU saturation.
    pub fn paper_cluster(scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0);
        let hosts = ((15.0 * scale).round() as usize).max(3);
        let base_streams = ((300.0 * scale).round() as usize).max(6);
        WorkloadSpec {
            hosts,
            base_streams,
            base_rate: 0.01, // 10 Kbps in Mbps units
            // Each host supports ~15 2-/3-way joins: a 2-way join over two
            // 0.01 Mbps streams costs 0.02 * cpu_per_rate; with
            // cpu_per_rate = 1 set capacity to 15 * ~0.05 (mix of 2/3-way).
            cpu_capacity: 0.6,
            host_bandwidth: 10.0,
            link_capacity: 10.0,
            arities: vec![(2, 1.0), (3, 1.0)],
            zipf_theta: 1.0,
            selectivity: (0.001, 0.005),
            queries: 250,
            seed: 0x50DA,
        }
    }
}

/// A generated workload: the system catalog plus the query arrival list.
#[derive(Debug, Clone)]
pub struct Workload {
    pub catalog: Catalog,
    pub bases: Vec<StreamId>,
    /// Base-stream sets per query, in arrival order.
    pub queries: Vec<Vec<StreamId>>,
}

/// Generates a system and workload from the spec (deterministic per seed).
pub fn generate(spec: &WorkloadSpec) -> Workload {
    let host = HostSpec::new(spec.cpu_capacity, spec.host_bandwidth);
    generate_with_hosts(spec, &vec![host; spec.hosts])
}

/// Like [`generate`], but with an explicit per-host spec list — the
/// heterogeneous-cluster entry point (scenario corpus). `spec.hosts`,
/// `spec.cpu_capacity` and `spec.host_bandwidth` are ignored in favour of
/// `hosts`; stream placement, query sampling and selectivities follow the
/// same seeded draws as the uniform path, so a uniform `hosts` list
/// reproduces [`generate`] exactly.
///
/// # Panics
/// Panics if `hosts` is empty.
pub fn generate_with_hosts(spec: &WorkloadSpec, hosts: &[HostSpec]) -> Workload {
    assert!(!hosts.is_empty(), "a workload needs at least one host");
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // Selectivities are drawn per pair lazily below; build the cost model
    // with the mid-range default first.
    let mid = (spec.selectivity.0 + spec.selectivity.1) / 2.0;
    let mut cost = CostModel::new(1.0, 0.25, mid);

    let topology = NetworkTopology::full_mesh(hosts.len(), spec.link_capacity);

    // Base streams uniformly distributed over hosts (paper §V).
    let placements: Vec<HostId> = (0..spec.base_streams)
        .map(|_| HostId(rng.gen_index(hosts.len()) as u32))
        .collect();

    // Pre-draw pairwise selectivities for pairs that co-occur in queries.
    // (Doing it for all pairs of 500 streams would be 125k entries; we add
    // them on demand while generating queries.)
    let zipf = Zipf::new(spec.base_streams, spec.zipf_theta);
    let total_weight: f64 = spec.arities.iter().map(|(_, w)| w).sum();

    let mut query_indices: Vec<Vec<usize>> = Vec::with_capacity(spec.queries);
    for _ in 0..spec.queries {
        // Pick the arity by weight.
        let mut pick = rng.gen_f64() * total_weight;
        let mut arity = spec.arities[0].0;
        for &(a, w) in &spec.arities {
            if pick < w {
                arity = a;
                break;
            }
            pick -= w;
        }
        query_indices.push(zipf.sample_distinct(&mut rng, arity));
    }

    // Base stream ids are dense and assigned in registration order, so we
    // can pre-compute them, register pairwise selectivities on the cost
    // model, and only then build the catalog.
    let bases: Vec<StreamId> = (0..spec.base_streams).map(|i| StreamId(i as u32)).collect();
    for idx in &query_indices {
        for a in 0..idx.len() {
            for b in a + 1..idx.len() {
                let sa = bases[idx[a]];
                let sb = bases[idx[b]];
                let sigma = rng.gen_range_f64(spec.selectivity.0, spec.selectivity.1);
                // First draw wins so the pair is consistent across queries.
                if cost.selectivity(sa, sb) == mid {
                    cost.set_selectivity(sa, sb, sigma);
                }
            }
        }
    }
    let mut catalog = Catalog::new(hosts.to_vec(), topology, cost);
    for (i, &h) in placements.iter().enumerate() {
        let s = catalog.add_base_stream(h, spec.base_rate, i as u64);
        debug_assert_eq!(s, bases[i], "base ids must be dense and in order");
    }

    let queries = query_indices
        .iter()
        .map(|idx| idx.iter().map(|&i| bases[i]).collect())
        .collect();
    Workload {
        catalog,
        bases,
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec {
            hosts: 4,
            base_streams: 20,
            base_rate: 10.0,
            cpu_capacity: 100.0,
            host_bandwidth: 100.0,
            link_capacity: 100.0,
            arities: vec![(2, 1.0), (3, 1.0)],
            zipf_theta: 1.0,
            selectivity: (0.001, 0.005),
            queries: 50,
            seed: 42,
        }
    }

    #[test]
    fn generates_requested_shape() {
        let w = generate(&small_spec());
        assert_eq!(w.catalog.num_hosts(), 4);
        assert_eq!(w.bases.len(), 20);
        assert_eq!(w.queries.len(), 50);
        for q in &w.queries {
            assert!(q.len() == 2 || q.len() == 3);
            let set: std::collections::BTreeSet<_> = q.iter().collect();
            assert_eq!(set.len(), q.len(), "distinct bases per query");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&small_spec());
        let b = generate(&small_spec());
        assert_eq!(a.queries, b.queries);
        let mut spec = small_spec();
        spec.seed = 43;
        let c = generate(&spec);
        assert_ne!(a.queries, c.queries);
    }

    #[test]
    fn zipf_skew_creates_overlap() {
        let mut spec = small_spec();
        spec.queries = 200;
        spec.zipf_theta = 1.5;
        let w = generate(&spec);
        // The most popular base stream should appear in many queries.
        let mut counts = vec![0usize; 20];
        for q in &w.queries {
            for s in q {
                counts[s.index()] += 1;
            }
        }
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert!(max > &(min + 20), "expected skew, got {counts:?}");
    }

    #[test]
    fn selectivities_in_range() {
        let w = generate(&small_spec());
        let cm = w.catalog.cost_model();
        for q in &w.queries {
            for i in 0..q.len() {
                for j in i + 1..q.len() {
                    let s = cm.selectivity(q[i], q[j]);
                    assert!((0.001..=0.005).contains(&s), "{s}");
                }
            }
        }
    }

    #[test]
    fn uniform_hosts_reproduce_the_uniform_path() {
        let spec = small_spec();
        let a = generate(&spec);
        let hosts = vec![HostSpec::new(spec.cpu_capacity, spec.host_bandwidth); spec.hosts];
        let b = generate_with_hosts(&spec, &hosts);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.bases, b.bases);
        for s in &a.bases {
            assert_eq!(a.catalog.source_host(*s), b.catalog.source_host(*s));
        }
    }

    #[test]
    fn heterogeneous_hosts_are_honoured() {
        let spec = small_spec();
        let hosts = vec![
            HostSpec::new(200.0, 500.0),
            HostSpec::new(50.0, 100.0),
            HostSpec::new(50.0, 100.0),
        ];
        let w = generate_with_hosts(&spec, &hosts);
        assert_eq!(w.catalog.num_hosts(), 3);
        assert_eq!(w.catalog.host(HostId(0)).cpu_capacity, 200.0);
        assert_eq!(w.catalog.host(HostId(2)).bandwidth_out, 100.0);
        // Placement draws index the real host count, not `spec.hosts`.
        for s in &w.bases {
            assert!(w.catalog.source_host(*s).unwrap().index() < 3);
        }
    }

    #[test]
    fn paper_specs_scale() {
        let sim = WorkloadSpec::paper_sim(0.2);
        assert_eq!(sim.hosts, 10);
        assert_eq!(sim.base_streams, 100);
        assert_eq!(sim.queries, 200);
        let full = WorkloadSpec::paper_sim(1.0);
        assert_eq!(full.hosts, 50);
        let cl = WorkloadSpec::paper_cluster(1.0);
        assert_eq!(cl.hosts, 15);
        assert_eq!(cl.base_streams, 300);
    }
}
