//! # sqpr-workload
//!
//! Workload generation for the SQPR evaluation: the Zipf sampler used for
//! base-stream selection, the k-way join query generator with pairwise
//! selectivities, and presets matching the paper's §V-A simulation and
//! §V-B cluster setups (scalable for laptop runs). [`fault`] adds seeded
//! fault-injection plans for the failure-storm experiments.

pub mod fault;
pub mod generator;
pub mod rng;
pub mod zipf;

pub use fault::{FaultPlan, FaultSpec};
pub use generator::{generate, Workload, WorkloadSpec};
pub use rng::{Rng, StdRng};
pub use zipf::Zipf;
