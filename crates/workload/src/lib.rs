//! # sqpr-workload
//!
//! Workload generation for the SQPR evaluation: the Zipf sampler used for
//! base-stream selection, the k-way join query generator with pairwise
//! selectivities, and presets matching the paper's §V-A simulation and
//! §V-B cluster setups (scalable for laptop runs). [`fault`] adds seeded
//! fault-injection plans for the failure-storm experiments; [`events`]
//! adds the deterministic rate-drift profiles scenario scripts replay.

pub mod events;
pub mod fault;
pub mod generator;
pub mod rng;
pub mod zipf;

pub use events::{DriftSpec, RateProfile};
pub use fault::{FaultPlan, FaultSpec};
pub use generator::{generate, generate_with_hosts, Workload, WorkloadSpec};
pub use rng::{Rng, StdRng};
pub use zipf::Zipf;
