//! Self-contained deterministic PRNG used across the workspace.
//!
//! The sanctioned dependency set has no `rand` crate, so workload
//! generation and the randomized property tests share this minimal
//! xoshiro256++ implementation (seeded via SplitMix64, the reference
//! seeding scheme). It is *not* cryptographic; it only needs to be fast,
//! deterministic per seed, and statistically sound enough for Zipf
//! sampling and test-case generation.

/// Minimal random-source trait (object-safe; used as `R: Rng + ?Sized`).
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        // 53 high bits -> [0, 1) with full double precision.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform index in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        // Multiply-shift rejection-free mapping (Lemire); the tiny modulo
        // bias is irrelevant for the ranges used here (n << 2^64).
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform `f64` in `[lo, hi)` (the upper bound itself is never
    /// drawn; `gen_f64` excludes 1.0).
    fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "crossed range [{lo}, {hi}]");
        lo + (hi - lo) * self.gen_f64()
    }

    /// Uniform `i64` in `[lo, hi]` inclusive.
    fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "crossed range [{lo}, {hi}]");
        let span = (hi - lo) as u64 as u128 + 1;
        lo + (((self.next_u64() as u128 * span) >> 64) as i64)
    }

    /// Uniform boolean.
    fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// The workspace's standard generator: xoshiro256++.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Seeds the state by running SplitMix64 on `seed` (never all-zero).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn index_covers_range() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.gen_index(7)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn i64_range_inclusive() {
        let mut r = StdRng::seed_from_u64(5);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2_000 {
            let v = r.gen_range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            lo_seen |= v == -3;
            hi_seen |= v == 3;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_index_range_rejected() {
        StdRng::seed_from_u64(0).gen_index(0);
    }
}
