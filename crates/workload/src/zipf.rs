//! Zipfian sampling over ranks `1..=n`.
//!
//! The evaluation selects the base streams of each query "according to a
//! Zipfian distribution with parameter 1", which "guarantees a certain
//! amount of overlap between queries" (§V). Parameter 0 degenerates to the
//! uniform distribution (used in Fig. 4(c)'s sweep).

use crate::rng::Rng;

/// A Zipf(θ) sampler over `{0, 1, …, n-1}` using inverse-CDF lookup.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities, length `n`.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler. `theta = 0` is uniform; larger values skew mass
    /// toward low indices.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta < 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "empty support");
        assert!(theta >= 0.0, "negative skew");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point drift at the top end.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    pub fn support(&self) -> usize {
        self.cdf.len()
    }

    /// Samples one index in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Samples `k` *distinct* indices (rejection; `k` must be ≤ n).
    pub fn sample_distinct<R: Rng + ?Sized>(&self, rng: &mut R, k: usize) -> Vec<usize> {
        assert!(
            k <= self.support(),
            "cannot draw {k} distinct from {}",
            self.support()
        );
        let mut out = Vec::with_capacity(k);
        // Zipf concentrates on few ranks; rejection can stall when k is
        // close to the effective support, so fall back to uniform fill.
        let mut attempts = 0usize;
        while out.len() < k {
            let i = self.sample(rng);
            if !out.contains(&i) {
                out.push(i);
            }
            attempts += 1;
            if attempts > 200 * k {
                for j in 0..self.support() {
                    if out.len() == k {
                        break;
                    }
                    if !out.contains(&j) {
                        out.push(j);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StdRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "{counts:?}");
        }
    }

    #[test]
    fn skewed_when_theta_one() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 must be roughly 1/H_100 ≈ 19% of samples, and counts
        // monotone-ish decreasing in aggregate.
        assert!(
            counts[0] > counts[10] && counts[10] > counts[60],
            "{counts:?}"
        );
        let p0 = counts[0] as f64 / 50_000.0;
        assert!((p0 - 0.192).abs() < 0.02, "p0 = {p0}");
    }

    #[test]
    fn distinct_samples_are_distinct() {
        let z = Zipf::new(10, 1.5);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let s = z.sample_distinct(&mut rng, 4);
            let set: std::collections::BTreeSet<_> = s.iter().collect();
            assert_eq!(set.len(), 4);
        }
    }

    #[test]
    fn distinct_near_full_support_terminates() {
        let z = Zipf::new(5, 2.0); // heavy skew
        let mut rng = StdRng::seed_from_u64(3);
        let s = z.sample_distinct(&mut rng, 5);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn deterministic_per_seed() {
        let z = Zipf::new(50, 1.0);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(11);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(11);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty support")]
    fn rejects_empty() {
        Zipf::new(0, 1.0);
    }
}
