//! Data-centre consolidation scenario (paper §II-C and Fig. 2): the
//! trade-off between conserving network resources and balancing CPU load.
//!
//! A hot, high-rate hub stream is joined against six low-rate probe
//! streams. Packing all joins next to the hub saves network (the probes are
//! cheap to ship) but concentrates CPU on one host — which the operator may
//! *want* ("skew the load distribution to switch off idle virtual
//! machines"). Balancing spreads the joins but ships the expensive hub
//! stream everywhere. SQPR exposes the choice through the λ3/λ4 weights.
//!
//! Run with: `cargo run --release --example datacenter_consolidation`

use sqpr_suite::core::{ObjectiveWeights, PlannerConfig, PlannerError, SolveBudget, SqprPlanner};
use sqpr_suite::dsps::metrics::jain_fairness;
use sqpr_suite::dsps::{Catalog, CostModel, HostId, HostSpec};

struct RunStats {
    admitted: usize,
    busy_hosts: usize,
    max_cpu: f64,
    network: f64,
    fairness: f64,
}

fn run(weights_for: fn(&Catalog) -> ObjectiveWeights) -> Result<RunStats, PlannerError> {
    // Host 0 sources the hot hub stream (20 Mbps); hosts 1..6 source one
    // cheap probe stream each (2 Mbps).
    let mut catalog =
        Catalog::uniform(7, HostSpec::new(400.0, 400.0), 1000.0, CostModel::default());
    let hub = catalog.add_base_stream(HostId(0), 20.0, 0);
    let probes: Vec<_> = (1..=6)
        .map(|i| catalog.add_base_stream(HostId(i as u32), 2.0, i as u64))
        .collect();
    let mut config = PlannerConfig::new(&catalog);
    config.weights = weights_for(&catalog);
    config.budget = SolveBudget::nodes(3000);
    // Let branch & bound genuinely optimise the resource terms instead of
    // stopping at the first admitting plan.
    config.improve_nodes = 3000;
    config.gap_tol = 0.0;
    let mut planner = SqprPlanner::new(catalog, config);
    for p in &probes {
        planner.submit(&[hub, *p])?;
    }
    let cpu = planner.state().cpu_usage(planner.catalog());
    let network: f64 = planner
        .state()
        .flows()
        .iter()
        .map(|&(_, _, s)| planner.catalog().stream(s).rate)
        .sum();
    Ok(RunStats {
        admitted: planner.num_admitted(),
        busy_hosts: cpu.iter().filter(|&&c| c > 1e-9).count(),
        max_cpu: cpu.iter().copied().fold(0.0, f64::max),
        network,
        fairness: jain_fairness(&cpu),
    })
}

fn main() {
    if let Err(e) = consolidate() {
        eprintln!("consolidation example failed: {e}");
        std::process::exit(1);
    }
}

fn consolidate() -> Result<(), PlannerError> {
    let s = run(ObjectiveWeights::min_resources)?;
    println!("min-resources preset ((λ3, λ4) = (1, 0)):");
    println!(
        "  {} admitted | {}/7 hosts busy | max cpu {:.0} | network {:.0} Mbps | fairness {:.2}",
        s.admitted, s.busy_hosts, s.max_cpu, s.network, s.fairness
    );
    println!(
        "  -> joins packed beside the hub; {} hosts can be powered down",
        7 - s.busy_hosts
    );

    let s = run(ObjectiveWeights::load_balance)?;
    println!("load-balance preset ((λ3, λ4) = (0, 1)):");
    println!(
        "  {} admitted | {}/7 hosts busy | max cpu {:.0} | network {:.0} Mbps | fairness {:.2}",
        s.admitted, s.busy_hosts, s.max_cpu, s.network, s.fairness
    );
    println!("  -> joins spread across hosts at the price of shipping the hub stream");
    Ok(())
}
