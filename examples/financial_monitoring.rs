//! Financial data processing scenario (paper §I motivates stream processing
//! with financial feeds): many overlapping correlation queries over a few
//! hot exchange feeds — exactly the workload shape where cross-query reuse
//! pays off. Compares SQPR with the SODA-style planner on the same arrival
//! sequence, then deploys SQPR's plan on the execution engine.
//!
//! Run with: `cargo run --release --example financial_monitoring`

use sqpr_suite::baselines::SodaPlanner;
use sqpr_suite::core::{PlannerConfig, PlannerError, SolveBudget, SqprPlanner};
use sqpr_suite::dsps::{run_engine, Catalog, CostModel, EngineConfig, HostId, HostSpec};

fn main() {
    if let Err(e) = run() {
        eprintln!("financial monitoring example failed: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), PlannerError> {
    // 6 hosts; 8 market feeds; the first two feeds (a consolidated tape and
    // an options feed) appear in most queries.
    let build_catalog = || {
        let mut c = Catalog::uniform(6, HostSpec::new(60.0, 50.0), 200.0, CostModel::default());
        let feeds: Vec<_> = (0..8)
            .map(|i| c.add_base_stream(HostId((i % 6) as u32), 4.0, i as u64))
            .collect();
        (c, feeds)
    };

    let (catalog, feeds) = build_catalog();
    let queries: Vec<Vec<_>> = vec![
        vec![feeds[0], feeds[1]],           // tape ⋈ options
        vec![feeds[0], feeds[1], feeds[2]], // + equities
        vec![feeds[0], feeds[1], feeds[3]], // + futures
        vec![feeds[0], feeds[2]],
        vec![feeds[1], feeds[4]],
        vec![feeds[0], feeds[1], feeds[5]],
        vec![feeds[0], feeds[6]],
        vec![feeds[1], feeds[7]],
        vec![feeds[0], feeds[1], feeds[2], feeds[3]], // 4-way correlation
        vec![feeds[2], feeds[3]],
    ];

    let mut config = PlannerConfig::new(&catalog);
    config.budget = SolveBudget::nodes(150);
    let mut sqpr = SqprPlanner::new(catalog, config);
    for q in &queries {
        sqpr.submit(q)?;
    }

    let (catalog2, _) = build_catalog();
    let mut soda = SodaPlanner::new(catalog2);
    for q in &queries {
        soda.submit(q);
    }

    println!("submitted {} queries", queries.len());
    println!(
        "SQPR admitted: {} (operators placed: {})",
        sqpr.num_admitted(),
        sqpr.state().placements().len()
    );
    println!(
        "SODA admitted: {} (operators placed: {})",
        soda.num_admitted(),
        soda.state().placements().len()
    );

    // Deploy SQPR's allocation on the engine and report measured usage.
    let report = run_engine(sqpr.catalog(), sqpr.state(), &EngineConfig::default());
    println!("\nmeasured CPU utilisation per host:");
    for (i, u) in report.cpu_utilization.iter().enumerate() {
        println!(
            "  h{i}: {:5.1}% cpu, {:6.2} Mbps net",
            u * 100.0,
            report.net_usage[i]
        );
    }
    println!(
        "result volume delivered to clients: {:.1}",
        report.delivered
    );
    Ok(())
}
