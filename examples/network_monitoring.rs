//! Network monitoring scenario (paper §I cites Gigascope-style network
//! monitoring): probes at the data-centre edge export flow streams;
//! operators correlate them. Demonstrates §IV-B adaptive re-planning: a
//! traffic surge triples one probe's rate, the planner re-plans affected
//! queries, and infeasible ones are dropped rather than degrading others.
//!
//! Run with: `cargo run --release --example network_monitoring`

use sqpr_suite::core::{
    adapt_to_observed_rates, PlannerConfig, PlannerError, SolveBudget, SqprPlanner,
};
use sqpr_suite::dsps::{Catalog, CostModel, HostId, HostSpec};

fn main() {
    if let Err(e) = run() {
        eprintln!("network monitoring example failed: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), PlannerError> {
    // 5 monitoring hosts, one probe stream each.
    let mut catalog = Catalog::uniform(5, HostSpec::new(80.0, 100.0), 500.0, CostModel::default());
    let probes: Vec<_> = (0..5)
        .map(|i| catalog.add_base_stream(HostId(i as u32), 10.0, i as u64))
        .collect();

    let mut config = PlannerConfig::new(&catalog);
    config.budget = SolveBudget::nodes(150);
    let mut planner = SqprPlanner::new(catalog, config);

    let queries = [
        vec![probes[0], probes[1]], // intrusion correlation
        vec![probes[1], probes[2]],
        vec![probes[2], probes[3]],
        vec![probes[0], probes[1], probes[4]], // cross-rack scan detector
    ];
    for q in &queries {
        let o = planner.submit(q)?;
        println!("query {:?}: admitted={}", o.query, o.admitted);
    }
    println!("admitted before surge: {}", planner.num_admitted());

    // Surge: probe 1 triples (DDoS traffic). Re-plan affected queries.
    println!("\n-- probe 1 rate surges 10 -> 30 Mbps --");
    let report = adapt_to_observed_rates(&mut planner, &[(probes[1], 30.0)], 0.25);
    println!("drifted streams: {:?}", report.drifted_streams);
    println!("re-planned: {:?}", report.replanned);
    println!("re-admitted: {:?}", report.readmitted);
    println!("dropped:     {:?}", report.dropped);
    println!("admitted after surge: {}", planner.num_admitted());
    assert!(planner.state().is_valid(planner.catalog()));
    println!("deployment remains valid after adaptation");
    Ok(())
}
