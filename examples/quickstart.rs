//! Quickstart: build a small DSPS, submit a few join queries through the
//! SQPR planner, and inspect the resulting deployment.
//!
//! Run with: `cargo run --release --example quickstart`

use sqpr_suite::core::{PlannerConfig, PlannerError, SolveBudget, SqprPlanner};
use sqpr_suite::dsps::{Catalog, CostModel, HostId, HostSpec};

fn main() {
    if let Err(e) = run() {
        eprintln!("quickstart failed: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), PlannerError> {
    // A 4-host data centre: 100 CPU units and 100 Mbps per host, 1 Gbps
    // links, full mesh.
    let mut catalog =
        Catalog::uniform(4, HostSpec::new(100.0, 100.0), 1000.0, CostModel::default());

    // Four base streams, two hosts each sourcing two.
    let trades = catalog.add_base_stream(HostId(0), 10.0, 1);
    let quotes = catalog.add_base_stream(HostId(1), 10.0, 2);
    let news = catalog.add_base_stream(HostId(2), 10.0, 3);
    let sentiment = catalog.add_base_stream(HostId(3), 10.0, 4);

    let mut config = PlannerConfig::new(&catalog);
    config.budget = SolveBudget::nodes(100);
    let mut planner = SqprPlanner::new(catalog, config);

    // Submit three overlapping queries.
    for (name, bases) in [
        ("trades ⋈ quotes", vec![trades, quotes]),
        ("trades ⋈ quotes ⋈ news", vec![trades, quotes, news]),
        (
            "trades ⋈ quotes ⋈ sentiment",
            vec![trades, quotes, sentiment],
        ),
    ] {
        let outcome = planner.submit(&bases)?;
        println!(
            "{name}: admitted={} reused_existing={} nodes={} time={:?}",
            outcome.admitted, outcome.reused_existing, outcome.nodes, outcome.solve_time
        );
    }

    println!("\nDeployment after planning:");
    println!("  admitted queries: {}", planner.num_admitted());
    println!("  operator placements:");
    for &(h, o) in planner.state().placements() {
        let op = planner.catalog().operator(o);
        println!(
            "    {h} runs {o} -> stream {} (cpu {:.1})",
            op.output, op.cpu_cost
        );
    }
    println!("  inter-host flows:");
    for &(from, to, s) in planner.state().flows() {
        println!(
            "    {from} -> {to}: stream {s} ({:.2} Mbps)",
            planner.catalog().stream(s).rate
        );
    }
    assert!(planner.state().is_valid(planner.catalog()));
    println!("\nDeployment validates: every stream is causal and within resources.");
    Ok(())
}
