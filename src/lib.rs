//! # sqpr-suite
//!
//! Workspace umbrella crate for the SQPR reproduction (Kalyvianaki et al.,
//! "SQPR: Stream Query Planning with Reuse", ICDE 2011): re-exports every
//! member crate under one namespace so the examples and cross-crate
//! integration tests read naturally.
//!
//! Library users should depend on the member crates directly:
//!
//! - [`sqpr_core`] — the SQPR planner itself;
//! - [`sqpr_dsps`] — the stream-processing substrate;
//! - [`sqpr_baselines`] — heuristic / optimistic-bound / SODA planners;
//! - [`sqpr_workload`] — workload generation;
//! - [`sqpr_scenario`] — the declarative scenario corpus;
//! - [`sqpr_milp`] / [`sqpr_lp`] — the optimisation stack.

pub use sqpr_baselines as baselines;
pub use sqpr_core as core;
pub use sqpr_dsps as dsps;
pub use sqpr_lp as lp;
pub use sqpr_milp as milp;
pub use sqpr_scenario as scenario;
pub use sqpr_workload as workload;
