//! Tier-1 gate for the invariant audit: `cargo test` fails whenever the
//! workspace carries an unwaived violation of any registered rule (or a
//! malformed / unused waiver). The same pass is runnable standalone via
//! `cargo run -p sqpr-audit -- --check .`; see ARCHITECTURE.md §12 for the
//! rule table and waiver grammar.

use std::path::Path;

use sqpr_audit::{audit_source, audit_workspace, registry};

#[test]
fn workspace_is_audit_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = audit_workspace(root).expect("scan workspace sources");
    // Guard against the scan silently missing the tree (e.g. a moved root):
    // the workspace has far more than 50 Rust sources.
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    let mut msg = String::new();
    for e in &report.errors {
        msg.push_str(e);
        msg.push('\n');
    }
    for v in &report.violations {
        msg.push_str(&v.to_string());
        msg.push('\n');
    }
    assert!(
        report.is_clean(),
        "the invariant audit found problems — fix them or add a reasoned \
         `// sqpr::allow(<rule>): <reason>` waiver:\n{msg}"
    );
}

/// Each rule still detects its violation class through the same entry point
/// the workspace gate uses — i.e. injecting such code into a scanned crate
/// WOULD fail `workspace_is_audit_clean`. One canonical injection per rule.
#[test]
fn gate_catches_an_injected_violation_of_each_rule() {
    let injections: &[(&str, &str)] = &[
        (
            "hash-iter",
            "use std::collections::HashMap;\n\
             pub fn f(m: &HashMap<u32, f64>) -> f64 { m.values().sum() }\n",
        ),
        (
            "hot-path-panic",
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        ),
        (
            "ambient-nondeterminism",
            "pub fn f() -> std::time::Instant { std::time::Instant::now() }\n",
        ),
        ("float-eq", "pub fn f(x: f64) -> bool { x == 0.25 }\n"),
        (
            "exhaustive-merge",
            "pub struct C { n: usize }\n\
             impl C { pub fn merge(&mut self, o: &C) { self.n += o.n; } }\n",
        ),
    ];
    assert_eq!(
        injections.len(),
        registry().len(),
        "a registered rule has no injection probe here"
    );
    for (rule, src) in injections {
        let report = audit_source("crates/core/src/injected.rs", src);
        assert!(
            report.violations.iter().any(|v| v.rule == *rule),
            "injected violation of `{rule}` was not detected"
        );
    }
}
