//! Crash-consistency of the speculative worker pool: when the branch &
//! bound aborts on its node budget *mid-speculation* (parallel workers in
//! flight), the persistent `LpCacheSlot` must come out reusable — the next
//! submission's decisions bit-identical to a twin planner that builds
//! every round from a fresh slot. A speculative worker that leaked a
//! half-patched compressed LP into the shared slot would show up here as
//! a decision divergence on some seed.
//!
//! Implemented as seeded random-case loops (the sanctioned dependency set
//! has no `proptest`); every case prints its seed on failure so it can be
//! replayed deterministically.

use sqpr_suite::core::{PlannerConfig, SolveBudget, SqprPlanner};
use sqpr_suite::dsps::{Catalog, CostModel, HostId, HostSpec, StreamId};
use sqpr_suite::workload::rng::{Rng, StdRng};

fn random_case(rng: &mut StdRng) -> (Catalog, Vec<StreamId>, Vec<Vec<usize>>) {
    let hosts = rng.gen_index(3) + 3;
    // Tight enough that admissions contend and budget aborts decide.
    let cpu = rng.gen_range_f64(25.0, 70.0);
    let bw = rng.gen_range_f64(30.0, 80.0);
    let mut c = Catalog::uniform(
        hosts,
        HostSpec::new(cpu, bw),
        bw * 6.0,
        CostModel::default(),
    );
    let n_bases = rng.gen_index(4) + 5;
    let bases: Vec<StreamId> = (0..n_bases)
        .map(|i| c.add_base_stream(HostId((i % hosts) as u32), 10.0, i as u64))
        .collect();
    let submissions: Vec<Vec<usize>> = (0..10)
        .map(|_| {
            let k = rng.gen_index(3) + 2;
            (0..k).map(|_| rng.gen_index(n_bases)).collect()
        })
        .collect();
    (c, bases, submissions)
}

fn drive(
    catalog: &Catalog,
    bases: &[StreamId],
    submissions: &[Vec<usize>],
    reuse_slot: bool,
    threads: usize,
) -> SqprPlanner {
    let mut cfg = PlannerConfig::new(catalog);
    // A tiny node budget: most rounds abort with speculative workers still
    // holding per-worker LP state, which is the scenario under test.
    cfg.budget = SolveBudget::nodes(4);
    cfg.reuse_solver_context = reuse_slot;
    cfg.lp_threads = threads;
    let mut planner = SqprPlanner::new(catalog.clone(), cfg);
    for sub in submissions {
        let mut set: Vec<StreamId> = sub.iter().map(|&i| bases[i]).collect();
        set.sort();
        set.dedup();
        if set.len() < 2 {
            continue;
        }
        planner.submit(&set).expect("valid bases");
    }
    planner
}

#[test]
fn budget_abort_mid_speculation_leaves_slot_reusable() {
    let mut aborted_rounds = 0usize;
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(0xAB0B ^ (seed << 3));
        let (catalog, bases, submissions) = random_case(&mut rng);

        // Shared-slot planner with speculative workers vs a fresh-slot
        // twin (every round built from scratch, nothing to corrupt).
        let warm = drive(&catalog, &bases, &submissions, true, 4);
        let fresh = drive(&catalog, &bases, &submissions, false, 1);

        let warm_decisions: Vec<(u32, bool)> = warm
            .outcomes()
            .iter()
            .map(|o| (o.query.0, o.admitted))
            .collect();
        let fresh_decisions: Vec<(u32, bool)> = fresh
            .outcomes()
            .iter()
            .map(|o| (o.query.0, o.admitted))
            .collect();
        assert_eq!(
            warm_decisions, fresh_decisions,
            "seed {seed}: decisions diverged after budget-aborted rounds"
        );
        assert_eq!(
            warm.state().placements(),
            fresh.state().placements(),
            "seed {seed}: placements diverged"
        );
        assert_eq!(
            warm.state().flows(),
            fresh.state().flows(),
            "seed {seed}: flows diverged"
        );
        assert_eq!(
            warm.deployment_objective().to_bits(),
            fresh.deployment_objective().to_bits(),
            "seed {seed}: objective not bit-identical"
        );

        // The scenario must actually occur: count rounds that stopped on
        // the budget without proving optimality.
        aborted_rounds += warm
            .outcomes()
            .iter()
            .filter(|o| !o.proved_optimal && !o.reused_existing)
            .count();
    }
    assert!(
        aborted_rounds > 0,
        "no budget-aborted round occurred; the property was vacuous"
    );
}

/// The same invariant across the `lp_threads` knob itself: a shared slot
/// fed by 4 speculative workers must match a shared slot fed by the
/// sequential solver, round for round, after budget aborts.
#[test]
fn aborted_speculation_matches_sequential_shared_slot() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(0x5EC0 ^ (seed << 5));
        let (catalog, bases, submissions) = random_case(&mut rng);
        let par = drive(&catalog, &bases, &submissions, true, 4);
        let seq = drive(&catalog, &bases, &submissions, true, 1);
        let decisions = |p: &SqprPlanner| -> Vec<(u32, bool, usize)> {
            p.outcomes()
                .iter()
                .map(|o| (o.query.0, o.admitted, o.nodes))
                .collect()
        };
        assert_eq!(decisions(&par), decisions(&seq), "seed {seed}");
        assert_eq!(
            par.deployment_objective().to_bits(),
            seq.deployment_objective().to_bits(),
            "seed {seed}"
        );
    }
}
