//! Cross-crate integration tests: generated workloads planned end-to-end,
//! planner comparisons, and engine deployment of planned allocations.

use sqpr_suite::baselines::{HeuristicPlanner, OptimisticBound, Planner, SodaPlanner};
use sqpr_suite::core::{PlannerConfig, SolveBudget, SqprPlanner};
use sqpr_suite::dsps::{run_engine, EngineConfig};
use sqpr_suite::workload::{generate, WorkloadSpec};

fn small_workload() -> sqpr_suite::workload::Workload {
    let mut spec = WorkloadSpec::paper_sim(0.07);
    spec.queries = 24;
    generate(&spec)
}

fn sqpr(w: &sqpr_suite::workload::Workload) -> SqprPlanner {
    let mut cfg = PlannerConfig::new(&w.catalog);
    cfg.budget = SolveBudget::nodes(30);
    SqprPlanner::new(w.catalog.clone(), cfg)
}

#[test]
fn planned_deployments_always_validate() {
    let w = small_workload();
    let mut planner = sqpr(&w);
    for q in &w.queries {
        planner.submit(q).expect("valid bases");
        assert!(
            planner.state().is_valid(planner.catalog()),
            "invalid state after a submission: {:?}",
            planner.state().validate(planner.catalog())
        );
    }
    assert!(planner.num_admitted() > 0);
}

#[test]
fn optimistic_bound_dominates_all_planners() {
    let w = small_workload();
    let mut ob = OptimisticBound::new(w.catalog.clone());
    let mut sq = sqpr(&w);
    let mut hp = HeuristicPlanner::new(w.catalog.clone());
    let mut soda = SodaPlanner::new(w.catalog.clone());
    for q in &w.queries {
        ob.submit_query(q);
        sq.submit_query(q);
        hp.submit_query(q);
        soda.submit_query(q);
    }
    // The aggregate-host bound holds at every planner (checked at the end;
    // it holds per-prefix by construction).
    assert!(
        ob.admitted() >= sq.admitted(),
        "bound {} < sqpr {}",
        ob.admitted(),
        sq.admitted()
    );
    assert!(ob.admitted() >= hp.admitted());
    assert!(ob.admitted() >= soda.admitted());
    // SQPR's flexibility must at least match the template-bound SODA.
    assert!(
        sq.admitted() >= soda.admitted(),
        "sqpr {} < soda {}",
        sq.admitted(),
        soda.admitted()
    );
}

#[test]
fn reuse_increases_admissions_under_overlap() {
    let mut spec = WorkloadSpec::paper_sim(0.07);
    spec.queries = 30;
    spec.zipf_theta = 1.5; // heavy overlap
    let w = generate(&spec);
    let mut cfg_on = PlannerConfig::new(&w.catalog);
    cfg_on.budget = SolveBudget::nodes(25);
    let mut on = SqprPlanner::new(w.catalog.clone(), cfg_on.clone());
    let mut cfg_off = cfg_on.clone();
    cfg_off.reuse = false;
    let mut off = SqprPlanner::new(w.catalog.clone(), cfg_off);
    for q in &w.queries {
        on.submit(q).expect("valid bases");
        off.submit(q).expect("valid bases");
    }
    assert!(
        on.num_admitted() >= off.num_admitted(),
        "reuse on {} < off {}",
        on.num_admitted(),
        off.num_admitted()
    );
}

#[test]
fn engine_measurements_match_planner_estimates() {
    let w = small_workload();
    let mut planner = sqpr(&w);
    for q in w.queries.iter().take(15) {
        planner.submit(q).expect("valid bases");
    }
    let report = run_engine(planner.catalog(), planner.state(), &EngineConfig::default());
    // Planned CPU per host (fraction of capacity) must match the engine's
    // measured utilisation within a pipeline-fill tolerance.
    let planned = planner.state().cpu_usage(planner.catalog());
    for h in planner.catalog().hosts() {
        let cap = planner.catalog().host(h).cpu_capacity;
        let want = planned[h.index()] / cap;
        let got = report.cpu_utilization[h.index()];
        assert!(
            (want - got).abs() < 0.1,
            "host {h}: planned {want:.3} vs measured {got:.3}"
        );
    }
    // All admitted queries deliver results.
    if planner.num_admitted() > 0 {
        assert!(report.delivered > 0.0);
    }
}

#[test]
fn identical_workloads_plan_deterministically() {
    let w = small_workload();
    let mut a = sqpr(&w);
    let mut b = sqpr(&w);
    for q in &w.queries {
        let oa = a.submit(q).expect("valid bases");
        let ob = b.submit(q).expect("valid bases");
        assert_eq!(oa.admitted, ob.admitted);
    }
    assert_eq!(a.num_admitted(), b.num_admitted());
    assert_eq!(a.state().placements(), b.state().placements());
    assert_eq!(a.state().flows(), b.state().flows());
}

#[test]
fn batch_and_sequential_both_serve_admitted_queries() {
    let w = small_workload();
    let mut seq = sqpr(&w);
    let mut bat = sqpr(&w);
    let queries: Vec<_> = w.queries.iter().take(12).cloned().collect();
    for q in &queries {
        seq.submit(q).expect("valid bases");
    }
    for chunk in queries.chunks(3) {
        bat.submit_batch(chunk).expect("valid bases");
    }
    for planner in [&seq, &bat] {
        assert!(planner.state().is_valid(planner.catalog()));
        for s in planner.state().admitted().values() {
            assert!(planner.state().provider_of(*s).is_some());
        }
    }
}
