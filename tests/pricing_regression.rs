//! Regression guard for the full-pivot-row devex pricing rule.
//!
//! Before the full Forrest–Goldfarb pivot-row update, devex was partial
//! (candidate short-list only) and *cost* ~15% extra iterations from cold
//! starts on the planner's models, so cold solves kept Dantzig pricing.
//! The full update reversed that — measured ~20% fewer cold LP iterations
//! on the incremental bench — and this test pins the reversal: cold-start
//! devex must not lose to Dantzig on a planner workload. The second half
//! of the heuristic (warm re-solves keep unit weights, i.e. price exactly
//! like Dantzig) is covered one layer down in
//! `crates/lp/tests/proptest_dual.rs::hinted_resolves_price_like_dantzig`.

use sqpr_suite::core::{PlannerConfig, PricingRule, SolveBudget, SqprPlanner};
use sqpr_suite::workload::{generate, WorkloadSpec};

fn cold_lp_iterations(
    w: &sqpr_suite::workload::Workload,
    pricing: PricingRule,
) -> (usize, Vec<bool>) {
    let mut cfg = PlannerConfig::new(&w.catalog);
    cfg.budget = SolveBudget::nodes(120);
    cfg.reuse_solver_context = false; // cold path: every solve from scratch
    cfg.lp_pricing = pricing;
    let mut planner = SqprPlanner::new(w.catalog.clone(), cfg);
    let mut admitted = Vec::new();
    for q in &w.queries {
        admitted.push(planner.submit(q).expect("valid bases").admitted);
    }
    let iters = planner.outcomes().iter().map(|o| o.lp_iterations).sum();
    (iters, admitted)
}

#[test]
fn cold_devex_does_not_lose_to_dantzig() {
    let mut spec = WorkloadSpec::paper_sim(0.07);
    spec.queries = 20;
    let w = generate(&spec);

    let (devex, devex_admitted) = cold_lp_iterations(&w, PricingRule::Devex);
    let (dantzig, dantzig_admitted) = cold_lp_iterations(&w, PricingRule::Dantzig);

    // Pricing changes the search path, never the answers.
    assert_eq!(
        devex_admitted, dantzig_admitted,
        "pricing rule changed admit/reject decisions"
    );
    // The regression bound: devex held a ~20% advantage when this was
    // written; the assertion leaves headroom so only a genuine reversal
    // (the pre-full-update behaviour) trips it.
    assert!(
        devex as f64 <= dantzig as f64 * 1.05,
        "cold devex regressed vs Dantzig: {devex} vs {dantzig} LP iterations"
    );
}
