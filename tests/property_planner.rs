//! Workspace-level property tests: random small systems and query sequences
//! must always leave the planner in a valid, causally-derivable state, and
//! the solver-based planner must never be beaten by the aggregate bound.
//!
//! Implemented as seeded random-case loops (the sanctioned dependency set
//! has no `proptest`); every case prints its seed on failure so it can be
//! replayed deterministically.

use sqpr_suite::baselines::OptimisticBound;
use sqpr_suite::core::{PlannerConfig, SolveBudget, SqprPlanner};
use sqpr_suite::dsps::{Catalog, CostModel, HostId, HostSpec};
use sqpr_suite::workload::rng::{Rng, StdRng};

#[derive(Debug, Clone)]
struct RandomSystem {
    hosts: usize,
    cpu: f64,
    bandwidth: f64,
    base_rates: Vec<u8>,
    queries: Vec<Vec<u8>>, // indices into bases
}

fn random_system(rng: &mut StdRng) -> RandomSystem {
    let hosts = rng.gen_index(3) + 2;
    let cpu = rng.gen_range_f64(20.0, 200.0);
    let bandwidth = rng.gen_range_f64(20.0, 200.0);
    let n_bases = rng.gen_index(5) + 4;
    let base_rates = (0..n_bases)
        .map(|_| rng.gen_range_i64(1, 20) as u8)
        .collect();
    let queries = (0..rng.gen_index(6) + 1)
        .map(|_| {
            (0..rng.gen_index(2) + 2)
                .map(|_| rng.gen_index(n_bases) as u8)
                .collect()
        })
        .collect();
    RandomSystem {
        hosts,
        cpu,
        bandwidth,
        base_rates,
        queries,
    }
}

fn build(sys: &RandomSystem) -> (Catalog, Vec<sqpr_suite::dsps::StreamId>) {
    let mut c = Catalog::uniform(
        sys.hosts,
        HostSpec::new(sys.cpu, sys.bandwidth),
        sys.bandwidth * 4.0,
        CostModel::default(),
    );
    let bases = sys
        .base_rates
        .iter()
        .enumerate()
        .map(|(i, &r)| c.add_base_stream(HostId((i % sys.hosts) as u32), r as f64, i as u64))
        .collect();
    (c, bases)
}

#[test]
fn planner_state_always_valid() {
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(0x51A7E ^ seed);
        let sys = random_system(&mut rng);
        let (catalog, bases) = build(&sys);
        let mut cfg = PlannerConfig::new(&catalog);
        cfg.budget = SolveBudget::nodes(30);
        let mut planner = SqprPlanner::new(catalog, cfg);
        for q in &sys.queries {
            let mut set: Vec<_> = q.iter().map(|&i| bases[i as usize]).collect();
            set.sort();
            set.dedup();
            if set.len() < 2 {
                continue;
            }
            planner.submit(&set).expect("valid bases");
            assert!(
                planner.state().is_valid(planner.catalog()),
                "seed {seed}: {:?}",
                planner.state().validate(planner.catalog())
            );
            // Every admitted query is actually served.
            for s in planner.state().admitted().values() {
                assert!(planner.state().provider_of(*s).is_some(), "seed {seed}");
            }
        }
    }
}

#[test]
fn aggregate_bound_holds() {
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(0xB0CD ^ (seed << 1));
        let sys = random_system(&mut rng);
        let (catalog, bases) = build(&sys);
        let mut cfg = PlannerConfig::new(&catalog);
        cfg.budget = SolveBudget::nodes(30);
        let mut planner = SqprPlanner::new(catalog.clone(), cfg);
        let mut bound = OptimisticBound::new(catalog);
        for q in &sys.queries {
            let mut set: Vec<_> = q.iter().map(|&i| bases[i as usize]).collect();
            set.sort();
            set.dedup();
            if set.len() < 2 {
                continue;
            }
            planner.submit(&set).expect("valid bases");
            bound.submit(&set);
            assert!(
                bound.num_admitted() >= planner.num_admitted(),
                "seed {seed}: bound {} < planner {}",
                bound.num_admitted(),
                planner.num_admitted()
            );
        }
    }
}

#[test]
fn removal_restores_capacity() {
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(0x4E40 ^ (seed << 2));
        let sys = random_system(&mut rng);
        let (catalog, bases) = build(&sys);
        let mut cfg = PlannerConfig::new(&catalog);
        cfg.budget = SolveBudget::nodes(30);
        let mut planner = SqprPlanner::new(catalog, cfg);
        let mut admitted = Vec::new();
        for q in &sys.queries {
            let mut set: Vec<_> = q.iter().map(|&i| bases[i as usize]).collect();
            set.sort();
            set.dedup();
            if set.len() < 2 {
                continue;
            }
            let o = planner.submit(&set).expect("valid bases");
            if o.admitted {
                admitted.push(o.query);
            }
        }
        for q in admitted {
            planner.remove_query(q);
            assert!(planner.state().is_valid(planner.catalog()), "seed {seed}");
        }
        // Everything removed: the deployment must be empty.
        assert_eq!(planner.num_admitted(), 0, "seed {seed}");
        assert!(planner.state().placements().is_empty(), "seed {seed}");
        assert!(planner.state().flows().is_empty(), "seed {seed}");
    }
}
