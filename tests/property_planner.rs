//! Workspace-level property tests: random small systems and query sequences
//! must always leave the planner in a valid, causally-derivable state, and
//! the solver-based planner must never be beaten by the aggregate bound.

use proptest::prelude::*;
use sqpr_suite::baselines::OptimisticBound;
use sqpr_suite::core::{PlannerConfig, SolveBudget, SqprPlanner};
use sqpr_suite::dsps::{Catalog, CostModel, HostId, HostSpec};

#[derive(Debug, Clone)]
struct RandomSystem {
    hosts: usize,
    cpu: f64,
    bandwidth: f64,
    base_rates: Vec<u8>,
    queries: Vec<Vec<u8>>, // indices into bases
}

fn random_system() -> impl Strategy<Value = RandomSystem> {
    (2usize..=4, 20.0f64..200.0, 20.0f64..200.0, 4usize..=8)
        .prop_flat_map(|(hosts, cpu, bandwidth, n_bases)| {
            (
                Just(hosts),
                Just(cpu),
                Just(bandwidth),
                proptest::collection::vec(1u8..=20, n_bases),
                proptest::collection::vec(
                    proptest::collection::vec(0u8..(n_bases as u8), 2..=3),
                    1..=6,
                ),
            )
        })
        .prop_map(
            |(hosts, cpu, bandwidth, base_rates, queries)| RandomSystem {
                hosts,
                cpu,
                bandwidth,
                base_rates,
                queries,
            },
        )
}

fn build(sys: &RandomSystem) -> (Catalog, Vec<sqpr_suite::dsps::StreamId>) {
    let mut c = Catalog::uniform(
        sys.hosts,
        HostSpec::new(sys.cpu, sys.bandwidth),
        sys.bandwidth * 4.0,
        CostModel::default(),
    );
    let bases = sys
        .base_rates
        .iter()
        .enumerate()
        .map(|(i, &r)| c.add_base_stream(HostId((i % sys.hosts) as u32), r as f64, i as u64))
        .collect();
    (c, bases)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn planner_state_always_valid(sys in random_system()) {
        let (catalog, bases) = build(&sys);
        let mut cfg = PlannerConfig::new(&catalog);
        cfg.budget = SolveBudget::nodes(30);
        let mut planner = SqprPlanner::new(catalog, cfg);
        for q in &sys.queries {
            let mut set: Vec<_> = q.iter().map(|&i| bases[i as usize]).collect();
            set.sort();
            set.dedup();
            if set.len() < 2 {
                continue;
            }
            planner.submit(&set);
            prop_assert!(
                planner.state().is_valid(planner.catalog()),
                "{:?}",
                planner.state().validate(planner.catalog())
            );
            // Every admitted query is actually served.
            for s in planner.state().admitted().values() {
                prop_assert!(planner.state().provider_of(*s).is_some());
            }
        }
    }

    #[test]
    fn aggregate_bound_holds(sys in random_system()) {
        let (catalog, bases) = build(&sys);
        let mut cfg = PlannerConfig::new(&catalog);
        cfg.budget = SolveBudget::nodes(30);
        let mut planner = SqprPlanner::new(catalog.clone(), cfg);
        let mut bound = OptimisticBound::new(catalog);
        for q in &sys.queries {
            let mut set: Vec<_> = q.iter().map(|&i| bases[i as usize]).collect();
            set.sort();
            set.dedup();
            if set.len() < 2 {
                continue;
            }
            planner.submit(&set);
            bound.submit(&set);
            prop_assert!(
                bound.num_admitted() >= planner.num_admitted(),
                "bound {} < planner {}",
                bound.num_admitted(),
                planner.num_admitted()
            );
        }
    }

    #[test]
    fn removal_restores_capacity(sys in random_system()) {
        let (catalog, bases) = build(&sys);
        let mut cfg = PlannerConfig::new(&catalog);
        cfg.budget = SolveBudget::nodes(30);
        let mut planner = SqprPlanner::new(catalog, cfg);
        let mut admitted = Vec::new();
        for q in &sys.queries {
            let mut set: Vec<_> = q.iter().map(|&i| bases[i as usize]).collect();
            set.sort();
            set.dedup();
            if set.len() < 2 {
                continue;
            }
            let o = planner.submit(&set);
            if o.admitted {
                admitted.push(o.query);
            }
        }
        for q in admitted {
            planner.remove_query(q);
            prop_assert!(planner.state().is_valid(planner.catalog()));
        }
        // Everything removed: the deployment must be empty.
        prop_assert_eq!(planner.num_admitted(), 0);
        prop_assert!(planner.state().placements().is_empty());
        prop_assert!(planner.state().flows().is_empty());
    }
}
