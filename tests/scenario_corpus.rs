//! The scenario-corpus runner: executes every declarative scenario under
//! `tests/scenarios/*.toml` through the three-way drive (warm planner,
//! cold twin, `lp_threads` 1/0 pair), checks thread-count bit-invariance,
//! warm/cold agreement and the scenarios' own expectations, diffs each
//! canonical verdict transcript against its committed golden file, and
//! verifies the committed per-scenario `BENCH_scenario_<name>.json`.
//!
//! On golden drift the candidate transcripts land in
//! `target/scenario_verdicts/` (CI uploads that directory as an
//! artifact). Re-bless intentionally changed verdicts with:
//!
//! ```text
//! SQPR_BLESS=1 cargo test --test scenario_corpus
//! ```

use std::path::Path;

use sqpr_suite::scenario::{check_scenario_file, discover};

#[test]
fn scenario_corpus() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let dir = root.join("tests/scenarios");
    let golden = dir.join("golden");
    let bench = root.to_path_buf(); // BENCH_scenario_*.json live at the repo root
    let out = root.join("target/scenario_verdicts");

    let files = discover(&dir).expect("tests/scenarios must exist");
    assert!(
        files.len() >= 8,
        "the corpus must hold at least 8 scenarios, found {}",
        files.len()
    );

    let mut passed = Vec::new();
    let mut failures = Vec::new();
    for f in &files {
        match check_scenario_file(f, &golden, &bench, &out) {
            Ok(name) => passed.push(name),
            Err(errs) => failures.extend(errs),
        }
    }
    eprintln!(
        "scenario corpus: {}/{} passed ({})",
        passed.len(),
        files.len(),
        passed.join(", ")
    );
    assert!(
        failures.is_empty(),
        "scenario corpus failures:\n{}",
        failures.join("\n")
    );
}
