//! Warm-start correctness: the incremental solver context (persistent
//! model skeleton + basis reuse) must be *behaviour-preserving* — across a
//! randomized 30-submission sequence, the warm-started planner and the
//! cold-start planner must take identical admit/reject decisions and end
//! with deployments of equivalent quality.
//!
//! Implemented as seeded random-case loops (the sanctioned dependency set
//! has no `proptest`); every case prints its seed on failure so it can be
//! replayed deterministically.

use sqpr_suite::core::{PlannerConfig, SolveBudget, SqprPlanner};
use sqpr_suite::dsps::{Catalog, CostModel, HostId, HostSpec};
use sqpr_suite::workload::rng::{Rng, StdRng};

/// Tolerance on the λ-weighted deployment objective; matches the LP
/// feasibility tolerance scale (`tol_feas`-driven vertex accuracy) with
/// headroom for alternative optima inside the solver's MIP gap.
const OBJ_TOL: f64 = 0.02;

struct RandomSequence {
    hosts: usize,
    cpu: f64,
    bandwidth: f64,
    base_rates: Vec<f64>,
    submissions: Vec<Vec<usize>>, // indices into bases
}

fn random_sequence(rng: &mut StdRng) -> RandomSequence {
    let hosts = rng.gen_index(3) + 2;
    let n_bases = rng.gen_index(5) + 5;
    RandomSequence {
        hosts,
        // Mix of roomy and tight systems so both admissions and
        // rejections are exercised.
        cpu: rng.gen_range_f64(25.0, 150.0),
        bandwidth: rng.gen_range_f64(40.0, 300.0),
        base_rates: (0..n_bases).map(|_| rng.gen_range_f64(1.0, 12.0)).collect(),
        submissions: (0..30)
            .map(|_| {
                (0..rng.gen_index(2) + 2)
                    .map(|_| rng.gen_index(n_bases))
                    .collect()
            })
            .collect(),
    }
}

fn build_catalog(seq: &RandomSequence) -> (Catalog, Vec<sqpr_suite::dsps::StreamId>) {
    let mut c = Catalog::uniform(
        seq.hosts,
        HostSpec::new(seq.cpu, seq.bandwidth),
        seq.bandwidth * 4.0,
        CostModel::default(),
    );
    let bases = seq
        .base_rates
        .iter()
        .enumerate()
        .map(|(i, &r)| c.add_base_stream(HostId((i % seq.hosts) as u32), r, i as u64))
        .collect();
    (c, bases)
}

#[test]
fn warm_and_cold_planners_agree_over_30_submissions() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(0x3A93 ^ seed);
        let seq = random_sequence(&mut rng);
        let (catalog, bases) = build_catalog(&seq);

        let mut planners: Vec<SqprPlanner> = [true, false]
            .iter()
            .map(|&ctx| {
                let mut cfg = PlannerConfig::new(&catalog);
                // Enough budget to prove optimality on these small
                // systems, so admissions are model-determined and must
                // coincide exactly.
                cfg.budget = SolveBudget::nodes(120);
                cfg.reuse_solver_context = ctx;
                SqprPlanner::new(catalog.clone(), cfg)
            })
            .collect();

        for (step, sub) in seq.submissions.iter().enumerate() {
            let mut set: Vec<_> = sub.iter().map(|&i| bases[i]).collect();
            set.sort();
            set.dedup();
            if set.len() < 2 {
                continue;
            }
            let warm_outcome = planners[0].submit(&set).expect("valid bases");
            let cold_outcome = planners[1].submit(&set).expect("valid bases");
            assert_eq!(
                warm_outcome.admitted, cold_outcome.admitted,
                "seed {seed} step {step}: admit/reject diverged (warm {} vs cold {})",
                warm_outcome.admitted, cold_outcome.admitted
            );
            for p in &planners {
                assert!(
                    p.state().is_valid(p.catalog()),
                    "seed {seed} step {step}: invalid state"
                );
            }
        }

        let warm_obj = planners[0].deployment_objective();
        let cold_obj = planners[1].deployment_objective();
        assert!(
            (warm_obj - cold_obj).abs() <= OBJ_TOL * (1.0 + cold_obj.abs()),
            "seed {seed}: deployment objectives diverged: warm {warm_obj} vs cold {cold_obj}"
        );
        assert_eq!(
            planners[0].num_admitted(),
            planners[1].num_admitted(),
            "seed {seed}: admitted counts diverged"
        );
    }
}

#[test]
fn warm_context_survives_rate_updates_and_removals() {
    // Interleave submissions with the mutations that invalidate the cached
    // skeleton; the planner must keep matching its cold twin afterwards.
    for seed in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(0xCAFE ^ (seed << 1));
        let seq = random_sequence(&mut rng);
        let (catalog, bases) = build_catalog(&seq);
        let mut cfg = PlannerConfig::new(&catalog);
        cfg.budget = SolveBudget::nodes(120);
        let mut warm = SqprPlanner::new(catalog.clone(), cfg.clone());
        cfg.reuse_solver_context = false;
        let mut cold = SqprPlanner::new(catalog.clone(), cfg);

        let mut admitted_warm = Vec::new();
        for (step, sub) in seq.submissions.iter().take(12).enumerate() {
            let mut set: Vec<_> = sub.iter().map(|&i| bases[i]).collect();
            set.sort();
            set.dedup();
            if set.len() < 2 {
                continue;
            }
            let wo = warm.submit(&set).expect("valid bases");
            let co = cold.submit(&set).expect("valid bases");
            assert_eq!(wo.admitted, co.admitted, "seed {seed} step {step}");
            if wo.admitted {
                admitted_warm.push(wo.query);
            }
            match step % 3 {
                0 => {
                    let s = bases[rng.gen_index(bases.len())];
                    let r = rng.gen_range_f64(1.0, 15.0);
                    warm.update_base_rate(s, r);
                    cold.update_base_rate(s, r);
                }
                1 => {
                    if let Some(&q) = admitted_warm.first() {
                        if rng.gen_bool() {
                            warm.remove_query(q);
                            cold.remove_query(q);
                            admitted_warm.remove(0);
                        }
                    }
                }
                _ => {}
            }
            assert!(
                warm.state().is_valid(warm.catalog()),
                "seed {seed} step {step}"
            );
            assert!(
                cold.state().is_valid(cold.catalog()),
                "seed {seed} step {step}"
            );
        }
        assert_eq!(warm.num_admitted(), cold.num_admitted(), "seed {seed}");
    }
}
